"""Relation schemas: named, typed attributes with validation."""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass

from repro.exceptions import SchemaError

__all__ = ["Attribute", "Schema"]

_TYPES: dict[str, type | tuple[type, ...]] = {
    "int": int,
    "float": (int, float),
    "str": str,
    "bool": bool,
}


@dataclass(frozen=True)
class Attribute:
    """One attribute of a relation schema.

    Attributes:
        name: Attribute name, e.g. ``"admission_cost"``.
        type_name: One of ``int``, ``float``, ``str``, ``bool``.
        nullable: Whether ``None`` values are accepted.
    """

    name: str
    type_name: str = "str"
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.type_name not in _TYPES:
            raise SchemaError(
                f"unknown type {self.type_name!r}; expected one of {sorted(_TYPES)}"
            )

    def accepts(self, value: object) -> bool:
        """True iff ``value`` fits this attribute."""
        if value is None:
            return self.nullable
        expected = _TYPES[self.type_name]
        if self.type_name in ("int", "float") and isinstance(value, bool):
            return False  # bool is an int subclass; keep the types honest.
        return isinstance(value, expected)


class Schema:
    """An ordered collection of attributes.

    Example:
        >>> schema = Schema([Attribute("pid", "int"), Attribute("name")])
        >>> schema.validate({"pid": 1, "name": "Acropolis"})
    """

    def __init__(self, attributes: Sequence[Attribute]) -> None:
        attributes = tuple(attributes)
        if not attributes:
            raise SchemaError("a schema needs at least one attribute")
        names = [attribute.name for attribute in attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names: {names}")
        self._attributes = attributes
        self._by_name = {attribute.name: attribute for attribute in attributes}

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """The attributes, in declaration order."""
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names, in declaration order."""
        return tuple(attribute.name for attribute in self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"schema has no attribute {name!r}") from None

    def validate(self, row: Mapping[str, object]) -> None:
        """Check that ``row`` has exactly the schema's attributes with
        acceptable values.

        Raises:
            SchemaError: On missing/extra attributes or type mismatches.
        """
        missing = set(self._by_name) - set(row)
        if missing:
            raise SchemaError(f"row is missing attributes {sorted(missing)}")
        extra = set(row) - set(self._by_name)
        if extra:
            raise SchemaError(f"row has unknown attributes {sorted(extra)}")
        for name, attribute in self._by_name.items():
            if not attribute.accepts(row[name]):
                raise SchemaError(
                    f"value {row[name]!r} does not fit attribute {name!r} "
                    f"({attribute.type_name}{', nullable' if attribute.nullable else ''})"
                )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{attribute.name}:{attribute.type_name}" for attribute in self._attributes
        )
        return f"Schema({inner})"
