"""In-memory relations with selection over attribute clauses.

A :class:`Relation` is a schema plus an ordered bag of validated rows.
``select`` implements the relational selection ``sigma_{A theta a}(R)``
used by Rank_CS (Algorithm 2), reusing the same
:class:`~repro.preferences.AttributeClause` machinery preferences are
written in, so every operator of Def. 5 works on both sides.

Selections consult per-attribute indexes (:mod:`repro.db.index`)
automatically whenever one exists: hash lookups for ``=`` and sorted
``bisect`` ranges for the inequality operators, falling back to the
sequential scan otherwise. Rows are addressed by **stable row ids** -
their insertion positions - which ``select_ids`` exposes so ranking
code can deduplicate tuples without relying on object identity.
Mutations bump a version counter and notify registered listeners,
which is how result caches learn to drop stale rankings.

**Thread safety.** The relation is guarded by one
:class:`~repro.concurrency.RWLock`: selections, projections and joins
take the read side (any number run together), while ``insert``,
``create_index``/``drop_index`` and listener (de)registration take the
exclusive write side. Listener dispatch happens *inside* the write
section, so a selection observes either the pre-mutation relation or
the post-mutation relation with every dependent cache already
invalidated - never a half-applied state. An ``auto_index`` build
triggered by a selection acquires the write lock *before* the
selection's read section (an RWLock cannot upgrade), so a read never
deadlocks waiting on its own index build. Listeners run under the
write lock and therefore must not re-enter the relation's write side
or acquire any lock that precedes the relation in the process lock
order (see :mod:`repro.concurrency`).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from types import MappingProxyType

from repro.exceptions import SchemaError
from repro.concurrency.locks import LEVEL_RELATION, RWLock
from repro.db.index import INDEXABLE_OPS, AttributeIndex
from repro.db.schema import Schema
from repro.faults.registry import get_fault_registry
from repro.obs.metrics import get_registry
from repro.preferences.preference import AttributeClause
from repro.tree.counters import AccessCounter

__all__ = ["Relation"]

Row = Mapping[str, object]


class Relation:
    """A named relation: a schema and its tuples.

    Rows are stored as read-only mappings; insertion validates against
    the schema so downstream code never sees malformed tuples. A row's
    id is its insertion position (the relation is append-only), so ids
    are stable for the relation's lifetime.

    Args:
        name: Relation name.
        schema: The relation's schema.
        rows: Initial tuples.
        auto_index: When true, the first indexable selection on an
            attribute builds that attribute's index on the fly; later
            selections reuse it.

    Example:
        >>> relation = Relation("points_of_interest", schema)
        >>> relation.insert({"pid": 1, "name": "Acropolis", ...})
        >>> relation.select(AttributeClause("name", "Acropolis"))
        [...]
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows: Iterable[Row] = (),
        auto_index: bool = False,
    ) -> None:
        if not name:
            raise SchemaError("relation name must be non-empty")
        self._name = name
        self._schema = schema
        self._rows: list[Row] = []
        self._indexes: dict[str, AttributeIndex] = {}
        self._auto_index = auto_index
        self._version = 0
        self._listeners: list[Callable[["Relation"], None]] = []
        self._lock = RWLock(level=LEVEL_RELATION, name=f"relation:{name}")
        for row in rows:
            self.insert(row)

    @property
    def name(self) -> str:
        """The relation's name."""
        return self._name

    @property
    def schema(self) -> Schema:
        """The relation's schema."""
        return self._schema

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every ``insert``."""
        return self._version

    @property
    def auto_index(self) -> bool:
        """Whether selections build missing attribute indexes on demand."""
        return self._auto_index

    @auto_index.setter
    def auto_index(self, enabled: bool) -> None:
        self._auto_index = bool(enabled)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Row:
        return self._rows[index]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, row: Row) -> None:
        """Validate and append one tuple (indexes update incrementally).

        The whole mutation - row append, incremental index updates,
        version bump *and* listener dispatch - runs under the write
        lock, so concurrent selections never observe a row without its
        index postings or a mutated relation with stale caches.
        """
        self._schema.validate(row)
        stored = MappingProxyType(dict(row))
        with self._lock.write_locked():
            row_id = len(self._rows)
            self._rows.append(stored)
            for index in self._indexes.values():
                index.add(row_id, stored)
            self._version += 1
            for listener in tuple(self._listeners):
                listener(self)

    def extend(self, rows: Iterable[Row]) -> None:
        """Validate and append several tuples."""
        for row in rows:
            self.insert(row)

    def add_mutation_listener(self, listener: Callable[["Relation"], None]) -> None:
        """Call ``listener(relation)`` after every mutation.

        Registering the same listener twice is a no-op, so caches can
        re-attach defensively.
        """
        with self._lock.write_locked():
            if listener not in self._listeners:
                self._listeners.append(listener)

    def remove_mutation_listener(self, listener: Callable[["Relation"], None]) -> None:
        """Stop notifying ``listener``; unknown listeners are ignored."""
        with self._lock.write_locked():
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    @property
    def mutation_listener_count(self) -> int:
        """Number of currently registered mutation listeners.

        Lifecycle code uses this to prove that transient owners (e.g.
        a per-user result cache) detach their listeners: the count must
        return to its baseline after register -> query -> unregister.
        """
        return len(self._listeners)

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    def create_index(self, attribute: str) -> AttributeIndex:
        """Build (or return the existing) index on ``attribute``.

        Raises:
            SchemaError: If the attribute is outside the schema.
        """
        if attribute not in self._schema:
            raise SchemaError(
                f"relation {self._name!r} has no attribute {attribute!r}"
            )
        faults = get_fault_registry()
        if faults.enabled:
            faults.fire("relation.index_build")
        with self._lock.write_locked():
            index = self._indexes.get(attribute)
            if index is None:
                index = AttributeIndex(attribute, self._rows)
                self._indexes[attribute] = index
            return index

    def drop_index(self, attribute: str) -> bool:
        """Drop the index on ``attribute``; True if one existed."""
        with self._lock.write_locked():
            return self._indexes.pop(attribute, None) is not None

    def has_index(self, attribute: str) -> bool:
        """True iff ``attribute`` currently has an index."""
        return attribute in self._indexes

    @property
    def indexed_attributes(self) -> tuple[str, ...]:
        """Names of the currently indexed attributes."""
        return tuple(self._indexes)

    def _index_for(
        self, clause: AttributeClause, use_index: bool = True
    ) -> AttributeIndex | None:
        """The index select should consult for ``clause``, if any.

        May build a missing index (``auto_index``), which takes the
        write lock - callers must therefore resolve indexes *before*
        entering their read-locked section (the RWLock cannot upgrade
        a held read side to the write side).
        """
        if not use_index or clause.op not in INDEXABLE_OPS:
            return None
        index = self._indexes.get(clause.attribute)
        if index is None and self._auto_index:
            index = self.create_index(clause.attribute)
        return index

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def select_ids(
        self,
        clause: AttributeClause,
        counter: AccessCounter | None = None,
        use_index: bool = True,
    ) -> list[int]:
        """Stable row ids satisfying the clause, in row order.

        Uses the attribute's index when one exists (or ``auto_index``
        is on) and the operator is indexable; otherwise scans. Index
        probes charge ``counter`` with index cells, scans with one cell
        per examined row. ``use_index=False`` forces the sequential
        scan - the degradation ladder's fallback when index builds are
        failing.

        Raises:
            SchemaError: If the clause names an attribute outside the schema.
        """
        if clause.attribute not in self._schema:
            raise SchemaError(
                f"relation {self._name!r} has no attribute {clause.attribute!r}"
            )
        faults = get_fault_registry()
        if faults.enabled:
            faults.fire("relation.select")
        registry = get_registry()
        # Resolve (and possibly build) the index before the read-locked
        # section: an auto-index build takes the write lock.
        index = self._index_for(clause, use_index)
        with self._lock.read_locked():
            if index is not None:
                ids = index.lookup(clause, counter)
                if ids is not None:
                    if registry.enabled:
                        registry.inc("relation.select.indexed")
                    return ids
            if counter is not None:
                counter.add_scan(len(self._rows))
            if registry.enabled:
                registry.inc("relation.select.scan")
            return [
                row_id for row_id, row in enumerate(self._rows) if clause.matches(row)
            ]

    def select(
        self,
        clause: AttributeClause,
        counter: AccessCounter | None = None,
        use_index: bool = True,
    ) -> list[Row]:
        """``sigma_{A theta a}(R)``: rows satisfying the clause.

        Raises:
            SchemaError: If the clause names an attribute outside the schema.
        """
        rows = self._rows
        return [
            rows[row_id] for row_id in self.select_ids(clause, counter, use_index)
        ]

    def select_all(
        self,
        clauses: Iterable[AttributeClause],
        counter: AccessCounter | None = None,
        use_index: bool = True,
    ) -> list[Row]:
        """Rows satisfying *every* clause (conjunction).

        When at least one clause has an index path, its id list seeds
        the candidate set and the remaining clauses filter it, so the
        conjunction costs O(|seed| x clauses) instead of a full scan.
        """
        clauses = list(clauses)
        for clause in clauses:
            if clause.attribute not in self._schema:
                raise SchemaError(
                    f"relation {self._name!r} has no attribute {clause.attribute!r}"
                )
        seed: AttributeClause | None = None
        for clause in clauses:
            if self._index_for(clause, use_index) is not None:
                seed = clause
                break
        if seed is not None:
            rest = [clause for clause in clauses if clause is not seed]
            seed_ids = self.select_ids(seed, counter, use_index)
            with self._lock.read_locked():
                rows = self._rows
                return [
                    rows[row_id]
                    for row_id in seed_ids
                    if all(clause.matches(rows[row_id]) for clause in rest)
                ]
        faults = get_fault_registry()
        if faults.enabled:
            faults.fire("relation.select")
        registry = get_registry()
        with self._lock.read_locked():
            if counter is not None:
                counter.add_scan(len(self._rows))
            if registry.enabled:
                registry.inc("relation.select.scan")
            return [
                row
                for row in self._rows
                if all(clause.matches(row) for clause in clauses)
            ]

    def rows_by_ids(self, row_ids: Sequence[int]) -> list[Row]:
        """The rows at the given stable ids, in the given order."""
        with self._lock.read_locked():
            rows = self._rows
            return [rows[row_id] for row_id in row_ids]

    def project(self, names: Iterable[str]) -> list[dict[str, object]]:
        """``pi_{names}(R)`` preserving duplicates and row order."""
        names = list(names)
        for name in names:
            if name not in self._schema:
                raise SchemaError(
                    f"relation {self._name!r} has no attribute {name!r}"
                )
        with self._lock.read_locked():
            return [{name: row[name] for name in names} for row in self._rows]

    def order_by(
        self, attribute: str, descending: bool = False
    ) -> list[Row]:
        """Rows sorted by one attribute (stable; ``None`` sorts last)."""
        if attribute not in self._schema:
            raise SchemaError(
                f"relation {self._name!r} has no attribute {attribute!r}"
            )
        with self._lock.read_locked():
            return sorted(
                self._rows,
                key=lambda row: (row[attribute] is None, row[attribute]),
                reverse=descending,
            )

    def join(
        self,
        other: "Relation",
        self_attribute: str,
        other_attribute: str | None = None,
        name: str | None = None,
    ) -> "Relation":
        """Equi-join with another relation (hash join).

        Overlapping attribute names on the right side are prefixed with
        ``"<other relation name>_"`` in the result schema.

        Raises:
            SchemaError: If a join attribute is missing on either side.
        """
        other_attribute = other_attribute or self_attribute
        if self_attribute not in self._schema:
            raise SchemaError(
                f"relation {self._name!r} has no attribute {self_attribute!r}"
            )
        if other_attribute not in other.schema:
            raise SchemaError(
                f"relation {other.name!r} has no attribute {other_attribute!r}"
            )

        def rename(attribute_name: str) -> str:
            if attribute_name in self._schema:
                return f"{other.name}_{attribute_name}"
            return attribute_name

        from repro.db.schema import Schema  # local to avoid import cycles

        joined_schema = Schema(
            [
                *self._schema.attributes,
                *(
                    type(attribute)(
                        rename(attribute.name), attribute.type_name, attribute.nullable
                    )
                    for attribute in other.schema
                ),
            ]
        )
        joined = Relation(name or f"{self._name}_join_{other.name}", joined_schema)
        buckets: dict[object, list[Row]] = {}
        for row in other:
            buckets.setdefault(row[other_attribute], []).append(row)
        for left in self._rows:
            for right in buckets.get(left[self_attribute], ()):
                combined = dict(left)
                combined.update(
                    {rename(attr): value for attr, value in right.items()}
                )
                joined.insert(combined)
        return joined

    def distinct_values(self, attribute: str) -> list[object]:
        """Distinct values of one attribute, in first-seen order."""
        if attribute not in self._schema:
            raise SchemaError(
                f"relation {self._name!r} has no attribute {attribute!r}"
            )
        with self._lock.read_locked():
            seen: dict[object, None] = {}
            for row in self._rows:
                seen.setdefault(row[attribute], None)
            return list(seen)

    def __repr__(self) -> str:
        indexed = f", indexed={list(self._indexes)}" if self._indexes else ""
        return f"Relation({self._name!r}, {len(self._rows)} rows{indexed})"
