"""In-memory relations with selection over attribute clauses.

A :class:`Relation` is a schema plus an ordered bag of validated rows.
``select`` implements the relational selection ``sigma_{A theta a}(R)``
used by Rank_CS (Algorithm 2), reusing the same
:class:`~repro.preferences.AttributeClause` machinery preferences are
written in, so every operator of Def. 5 works on both sides.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from types import MappingProxyType

from repro.exceptions import SchemaError
from repro.db.schema import Schema
from repro.preferences.preference import AttributeClause

__all__ = ["Relation"]

Row = Mapping[str, object]


class Relation:
    """A named relation: a schema and its tuples.

    Rows are stored as read-only mappings; insertion validates against
    the schema so downstream code never sees malformed tuples.

    Example:
        >>> relation = Relation("points_of_interest", schema)
        >>> relation.insert({"pid": 1, "name": "Acropolis", ...})
        >>> relation.select(AttributeClause("name", "Acropolis"))
        [...]
    """

    def __init__(self, name: str, schema: Schema, rows: Iterable[Row] = ()) -> None:
        if not name:
            raise SchemaError("relation name must be non-empty")
        self._name = name
        self._schema = schema
        self._rows: list[Row] = []
        for row in rows:
            self.insert(row)

    @property
    def name(self) -> str:
        """The relation's name."""
        return self._name

    @property
    def schema(self) -> Schema:
        """The relation's schema."""
        return self._schema

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Row:
        return self._rows[index]

    def insert(self, row: Row) -> None:
        """Validate and append one tuple."""
        self._schema.validate(row)
        self._rows.append(MappingProxyType(dict(row)))

    def extend(self, rows: Iterable[Row]) -> None:
        """Validate and append several tuples."""
        for row in rows:
            self.insert(row)

    def select(self, clause: AttributeClause) -> list[Row]:
        """``sigma_{A theta a}(R)``: rows satisfying the clause.

        Raises:
            SchemaError: If the clause names an attribute outside the schema.
        """
        if clause.attribute not in self._schema:
            raise SchemaError(
                f"relation {self._name!r} has no attribute {clause.attribute!r}"
            )
        return [row for row in self._rows if clause.matches(row)]

    def select_all(self, clauses: Iterable[AttributeClause]) -> list[Row]:
        """Rows satisfying *every* clause (conjunction)."""
        clauses = list(clauses)
        for clause in clauses:
            if clause.attribute not in self._schema:
                raise SchemaError(
                    f"relation {self._name!r} has no attribute {clause.attribute!r}"
                )
        return [
            row for row in self._rows if all(clause.matches(row) for clause in clauses)
        ]

    def project(self, names: Iterable[str]) -> list[dict[str, object]]:
        """``pi_{names}(R)`` preserving duplicates and row order."""
        names = list(names)
        for name in names:
            if name not in self._schema:
                raise SchemaError(
                    f"relation {self._name!r} has no attribute {name!r}"
                )
        return [{name: row[name] for name in names} for row in self._rows]

    def order_by(
        self, attribute: str, descending: bool = False
    ) -> list[Row]:
        """Rows sorted by one attribute (stable; ``None`` sorts last)."""
        if attribute not in self._schema:
            raise SchemaError(
                f"relation {self._name!r} has no attribute {attribute!r}"
            )
        return sorted(
            self._rows,
            key=lambda row: (row[attribute] is None, row[attribute]),
            reverse=descending,
        )

    def join(
        self,
        other: "Relation",
        self_attribute: str,
        other_attribute: str | None = None,
        name: str | None = None,
    ) -> "Relation":
        """Equi-join with another relation (hash join).

        Overlapping attribute names on the right side are prefixed with
        ``"<other relation name>_"`` in the result schema.

        Raises:
            SchemaError: If a join attribute is missing on either side.
        """
        other_attribute = other_attribute or self_attribute
        if self_attribute not in self._schema:
            raise SchemaError(
                f"relation {self._name!r} has no attribute {self_attribute!r}"
            )
        if other_attribute not in other.schema:
            raise SchemaError(
                f"relation {other.name!r} has no attribute {other_attribute!r}"
            )

        def rename(attribute_name: str) -> str:
            if attribute_name in self._schema:
                return f"{other.name}_{attribute_name}"
            return attribute_name

        from repro.db.schema import Schema  # local to avoid import cycles

        joined_schema = Schema(
            [
                *self._schema.attributes,
                *(
                    type(attribute)(
                        rename(attribute.name), attribute.type_name, attribute.nullable
                    )
                    for attribute in other.schema
                ),
            ]
        )
        joined = Relation(name or f"{self._name}_join_{other.name}", joined_schema)
        buckets: dict[object, list[Row]] = {}
        for row in other:
            buckets.setdefault(row[other_attribute], []).append(row)
        for left in self._rows:
            for right in buckets.get(left[self_attribute], ()):
                combined = dict(left)
                combined.update(
                    {rename(attr): value for attr, value in right.items()}
                )
                joined.insert(combined)
        return joined

    def distinct_values(self, attribute: str) -> list[object]:
        """Distinct values of one attribute, in first-seen order."""
        if attribute not in self._schema:
            raise SchemaError(
                f"relation {self._name!r} has no attribute {attribute!r}"
            )
        seen: dict[object, None] = {}
        for row in self._rows:
            seen.setdefault(row[attribute], None)
        return list(seen)

    def __repr__(self) -> str:
        return f"Relation({self._name!r}, {len(self._rows)} rows)"
