"""The Points_of_Interest database of the running example (Sec. 2).

The paper evaluates against "a real database of points-of-interest of
the two largest cities in Greece". That database is not available, so
this module generates a deterministic, realistic substitute: a handful
of landmarks named in the paper (Acropolis, breweries in Plaka, ...)
plus seeded synthetic POIs spread over the regions of the location
hierarchy. The schema follows the paper exactly:
``Points_of_Interest(pid, name, type, location, open_air,
hours_of_operation, admission_cost)``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.db.relation import Relation
from repro.db.schema import Attribute, Schema
from repro.hierarchy import Hierarchy, location_hierarchy

__all__ = [
    "POI_TYPES",
    "points_of_interest_schema",
    "landmark_rows",
    "generate_poi_relation",
]

#: POI types used by the running example and the generator.
POI_TYPES = (
    "museum",
    "monument",
    "archaeological_site",
    "zoo",
    "brewery",
    "cafeteria",
    "park",
    "theater",
    "gallery",
    "market",
)

#: Types that are typically open-air; drives the generator's open_air flag.
_OPEN_AIR_TYPES = frozenset(
    {"monument", "archaeological_site", "zoo", "park", "market"}
)


def points_of_interest_schema() -> Schema:
    """The paper's Points_of_Interest schema."""
    return Schema(
        [
            Attribute("pid", "int"),
            Attribute("name", "str"),
            Attribute("type", "str"),
            Attribute("location", "str"),
            Attribute("open_air", "bool"),
            Attribute("hours_of_operation", "str"),
            Attribute("admission_cost", "float"),
        ]
    )


def landmark_rows() -> list[dict[str, object]]:
    """The landmarks the paper's examples mention, with sensible data."""
    return [
        {
            "pid": 1,
            "name": "Acropolis",
            "type": "archaeological_site",
            "location": "Plaka",
            "open_air": True,
            "hours_of_operation": "08:00-20:00",
            "admission_cost": 20.0,
        },
        {
            "pid": 2,
            "name": "Archaeological Museum",
            "type": "museum",
            "location": "Syntagma",
            "open_air": False,
            "hours_of_operation": "09:00-17:00",
            "admission_cost": 12.0,
        },
        {
            "pid": 3,
            "name": "Plaka Brewery",
            "type": "brewery",
            "location": "Plaka",
            "open_air": False,
            "hours_of_operation": "18:00-02:00",
            "admission_cost": 0.0,
        },
        {
            "pid": 4,
            "name": "Kifisia Cafeteria",
            "type": "cafeteria",
            "location": "Kifisia",
            "open_air": True,
            "hours_of_operation": "08:00-23:00",
            "admission_cost": 0.0,
        },
        {
            "pid": 5,
            "name": "Attica Zoo",
            "type": "zoo",
            "location": "Kifisia",
            "open_air": True,
            "hours_of_operation": "09:00-19:00",
            "admission_cost": 18.0,
        },
        {
            "pid": 6,
            "name": "White Tower",
            "type": "monument",
            "location": "Ladadika",
            "open_air": True,
            "hours_of_operation": "08:30-15:00",
            "admission_cost": 6.0,
        },
    ]


def generate_poi_relation(
    num_pois: int = 200,
    seed: int = 7,
    hierarchy: Hierarchy | None = None,
    include_landmarks: bool = True,
    types: Sequence[str] = POI_TYPES,
) -> Relation:
    """Generate a deterministic Points_of_Interest relation.

    Args:
        num_pois: Total number of rows (landmarks included).
        seed: Seed for the numpy generator; equal seeds give equal data.
        hierarchy: Location hierarchy whose *detailed* values become the
            POIs' locations; defaults to the paper's location hierarchy.
        include_landmarks: Prepend the paper's named landmarks.
        types: POI types to draw from.

    Returns:
        A validated :class:`Relation` with ``num_pois`` rows.
    """
    if hierarchy is None:
        hierarchy = location_hierarchy()
    rng = np.random.default_rng(seed)
    relation = Relation("points_of_interest", points_of_interest_schema())

    rows: list[dict[str, object]] = landmark_rows() if include_landmarks else []
    rows = rows[:num_pois]
    regions = list(hierarchy.dom)
    next_pid = (max((int(row["pid"]) for row in rows), default=0)) + 1
    while len(rows) < num_pois:
        poi_type = str(rng.choice(list(types)))
        region = str(rng.choice(regions))
        open_air_bias = 0.8 if poi_type in _OPEN_AIR_TYPES else 0.15
        open_hour = int(rng.integers(7, 12))
        close_hour = int(rng.integers(15, 24))
        cost = float(np.round(rng.uniform(0.0, 25.0), 2)) if rng.random() < 0.6 else 0.0
        rows.append(
            {
                "pid": next_pid,
                "name": f"{poi_type.replace('_', ' ').title()} #{next_pid}",
                "type": poi_type,
                "location": region,
                "open_air": bool(rng.random() < open_air_bias),
                "hours_of_operation": f"{open_hour:02d}:00-{close_hour:02d}:00",
                "admission_cost": cost,
            }
        )
        next_pid += 1
    relation.extend(rows)
    return relation
