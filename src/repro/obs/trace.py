"""Lightweight trace spans for the serving path.

A span times one named stage (``search_cs``, ``rank_rows``,
``execute``...) and records the elapsed seconds into the
``latency.<name>`` histogram of a :class:`~repro.obs.MetricsRegistry`,
plus a ``spans.<name>`` completion counter. Spans nest freely (each
stage keeps its own histogram) and cost one clock read on entry and
one on exit; while the registry is disabled they are pure no-ops.

Example::

    from repro.obs import span

    with span("search_cs"):
        resolution = resolver.resolve_state(state)
"""

from __future__ import annotations

import time

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["span"]


class span:
    """Context manager timing one stage into the metrics registry.

    Args:
        name: Stage name; the latency lands in ``latency.<name>``.
        registry: Registry to record into (default: the process one).

    The elapsed seconds are available as ``.elapsed`` after exit (or
    ``None`` when the registry was disabled at entry). Exceptions
    propagate; the failed span is still recorded, with an
    ``error="true"`` label on the completion counter so failure rates
    are visible per stage.
    """

    __slots__ = ("name", "elapsed", "_registry", "_start")

    def __init__(self, name: str, registry: MetricsRegistry | None = None) -> None:
        self.name = name
        self.elapsed: float | None = None
        self._registry = registry if registry is not None else get_registry()
        self._start: float | None = None

    def __enter__(self) -> "span":
        self._start = time.perf_counter() if self._registry.enabled else None
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
            self._registry.observe(f"latency.{self.name}", self.elapsed)
            if exc_type is None:
                self._registry.inc(f"spans.{self.name}")
            else:
                self._registry.inc(f"spans.{self.name}", labels={"error": "true"})
        return False
