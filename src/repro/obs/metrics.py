"""Process-wide metrics: counters, gauges and latency histograms.

The paper's experimental section treats hit rates and cell accesses as
first-class outputs; a serving system needs the same numbers (plus
latency) continuously, not just inside experiment drivers. This module
provides a :class:`MetricsRegistry` that the library's operators charge
through module-level hooks: cheap enough to leave compiled into every
hot path, and a strict no-op while disabled.

Design constraints, in order:

* **Disabled is free.** Every recording call starts with one attribute
  check (``registry.enabled``); instrumented code paths additionally
  guard with the same check before building label mappings, so the
  disabled cost is one branch per call site.
* **Enabled is cheap.** Counters and gauges are dict updates;
  histograms append to a fixed-size ring buffer. Nothing allocates
  per-observation beyond the label key.
* **Recording is thread-safe.** Each metric serialises its updates
  under its own lock (the concurrent serving path increments the same
  counter from many threads; unlocked read-modify-write would lose
  counts). Metric locks are leaves of the process lock order: no code
  runs under them.
* **Snapshots are structured.** :meth:`MetricsRegistry.snapshot`
  returns plain dicts (JSON-ready); :meth:`MetricsRegistry.to_prometheus`
  renders the text exposition format (counters/gauges as-is,
  histograms as summaries with ``quantile`` labels).

Metric names are dotted (``cache.hits``, ``latency.search_cs``);
labels are free-form key/value pairs (``user="alice"``). The process
default registry is returned by :func:`get_registry`; it starts
disabled unless the ``REPRO_OBS`` environment variable is set to a
truthy value.
"""

from __future__ import annotations

import json
import os
from collections.abc import Mapping

from repro.exceptions import ReproError
from repro.concurrency.locks import LEVEL_METRICS, Mutex

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "disable",
    "enable",
    "get_registry",
    "is_enabled",
]

#: Canonical label identity: sorted ``(key, value)`` string pairs.
LabelKey = tuple[tuple[str, str], ...]

#: Default number of retained observations per histogram series.
DEFAULT_RESERVOIR = 1024


def _label_key(labels: Mapping[str, object] | None) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing value, optionally per label set.

    Increments run under a per-metric lock: a read-modify-write
    without one silently loses counts when query threads race, and the
    concurrency stress tests assert that counters sum exactly.
    """

    kind = "counter"

    __slots__ = ("name", "help", "_series", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: dict[LabelKey, float] = {}
        self._lock = Mutex(level=LEVEL_METRICS, name=f"metric:{name}")

    def inc(self, value: float = 1.0, labels: Mapping[str, object] | None = None) -> None:
        """Add ``value`` (must be non-negative) to one label series."""
        if value < 0:
            raise ReproError(f"counter {self.name!r} cannot decrease (got {value})")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + value

    def value(self, labels: Mapping[str, object] | None = None) -> float:
        """Current value of one label series (0.0 if never incremented)."""
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label series."""
        with self._lock:
            return sum(self._series.values())

    def series(self) -> dict[LabelKey, float]:
        """Every label series, as ``{label key: value}``."""
        with self._lock:
            return dict(self._series)


class Gauge:
    """A value that can go up and down, optionally per label set."""

    kind = "gauge"

    __slots__ = ("name", "help", "_series", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: dict[LabelKey, float] = {}
        self._lock = Mutex(level=LEVEL_METRICS, name=f"metric:{name}")

    def set(self, value: float, labels: Mapping[str, object] | None = None) -> None:
        """Set one label series to ``value``."""
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def add(self, delta: float, labels: Mapping[str, object] | None = None) -> None:
        """Adjust one label series by ``delta``."""
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + delta

    def value(self, labels: Mapping[str, object] | None = None) -> float:
        """Current value of one label series (0.0 if never set)."""
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def series(self) -> dict[LabelKey, float]:
        """Every label series, as ``{label key: value}``."""
        with self._lock:
            return dict(self._series)


class _HistogramSeries:
    """One label series: running aggregates + a bounded reservoir."""

    __slots__ = ("count", "total", "minimum", "maximum", "reservoir", "capacity")

    def __init__(self, capacity: int) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.capacity = capacity
        self.reservoir: list[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self.reservoir) < self.capacity:
            self.reservoir.append(value)
        else:
            # Overwrite in ring order so the reservoir tracks the most
            # recent ``capacity`` observations (serving metrics should
            # reflect current latency, not the process's whole life).
            self.reservoir[self.count % self.capacity] = value

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile over the retained observations."""
        if not self.reservoir:
            return 0.0
        ordered = sorted(self.reservoir)
        rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
        return ordered[rank]


class Histogram:
    """Latency/size distribution: count, sum, min/max and percentiles.

    Percentiles are computed from a bounded reservoir of the most
    recent observations (default 1024), so memory stays constant no
    matter how long the process runs.
    """

    kind = "histogram"

    __slots__ = ("name", "help", "capacity", "_series", "_lock")

    def __init__(
        self, name: str, help: str = "", capacity: int = DEFAULT_RESERVOIR
    ) -> None:
        if capacity <= 0:
            raise ReproError(f"histogram capacity must be positive, got {capacity}")
        self.name = name
        self.help = help
        self.capacity = capacity
        self._series: dict[LabelKey, _HistogramSeries] = {}
        self._lock = Mutex(level=LEVEL_METRICS, name=f"metric:{name}")

    def observe(self, value: float, labels: Mapping[str, object] | None = None) -> None:
        """Record one observation into one label series."""
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(self.capacity)
            series.observe(value)

    def count(self, labels: Mapping[str, object] | None = None) -> int:
        """Observations recorded into one label series."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series is not None else 0

    def sum(self, labels: Mapping[str, object] | None = None) -> float:
        """Sum of all observations of one label series."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.total if series is not None else 0.0

    def percentile(
        self, fraction: float, labels: Mapping[str, object] | None = None
    ) -> float:
        """Nearest-rank percentile (``fraction`` in [0, 1]) of one series."""
        if not 0.0 <= fraction <= 1.0:
            raise ReproError(f"percentile fraction must be in [0, 1], got {fraction}")
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.percentile(fraction) if series is not None else 0.0

    def series(self) -> dict[LabelKey, _HistogramSeries]:
        """Every label series (internal aggregates; treat as read-only)."""
        with self._lock:
            return dict(self._series)


class MetricsRegistry:
    """Names metrics, records into them, and renders snapshots.

    All recording methods are no-ops while the registry is disabled,
    so instrumentation can stay permanently wired into hot paths.

    Example:
        >>> registry = MetricsRegistry(enabled=True)
        >>> registry.inc("cache.hits")
        >>> registry.observe("latency.search_cs", 0.0012)
        >>> registry.snapshot()["counters"]["cache.hits"][""]
        1.0
    """

    def __init__(self, enabled: bool = False) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._enabled = bool(enabled)
        self._lock = Mutex(level=LEVEL_METRICS, name="metrics.registry")

    # ------------------------------------------------------------------
    # Switching
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether recording calls do anything."""
        return self._enabled

    def enable(self) -> None:
        """Turn recording on."""
        self._enabled = True

    def disable(self) -> None:
        """Turn recording off (metrics keep their recorded values)."""
        self._enabled = False

    def reset(self) -> None:
        """Drop every metric (the enabled flag is preserved)."""
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------
    # Declaration (get-or-create)
    # ------------------------------------------------------------------
    def _declare(self, factory, name: str, help: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = factory(name, help, **kwargs)
                    self._metrics[name] = metric
        if not isinstance(metric, factory):
            raise ReproError(
                f"metric {name!r} is a {metric.kind}, not a {factory.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter ``name``."""
        return self._declare(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        return self._declare(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", capacity: int = DEFAULT_RESERVOIR
    ) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._declare(Histogram, name, help, capacity=capacity)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The metric registered under ``name``, if any."""
        return self._metrics.get(name)

    # ------------------------------------------------------------------
    # Recording (no-ops while disabled)
    # ------------------------------------------------------------------
    def inc(
        self,
        name: str,
        value: float = 1.0,
        labels: Mapping[str, object] | None = None,
    ) -> None:
        """Increment counter ``name`` (created on first use)."""
        if not self._enabled:
            return
        self.counter(name).inc(value, labels)

    def set_gauge(
        self,
        name: str,
        value: float,
        labels: Mapping[str, object] | None = None,
    ) -> None:
        """Set gauge ``name`` (created on first use)."""
        if not self._enabled:
            return
        self.gauge(name).set(value, labels)

    def observe(
        self,
        name: str,
        value: float,
        labels: Mapping[str, object] | None = None,
    ) -> None:
        """Record one observation into histogram ``name``."""
        if not self._enabled:
            return
        self.histogram(name).observe(value, labels)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """Every metric's current state as a JSON-ready dict.

        Label series are keyed by their Prometheus-style rendering
        (``'user="alice"'``); the unlabeled series is keyed ``""``.
        Histogram series carry count/sum/min/max/mean and the p50/p95
        the acceptance experiments report.
        """
        counters: dict[str, dict[str, float]] = {}
        gauges: dict[str, dict[str, float]] = {}
        histograms: dict[str, dict[str, dict[str, float]]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = {
                    _render_labels(key).strip("{}"): value
                    for key, value in sorted(metric.series().items())
                }
            elif isinstance(metric, Gauge):
                gauges[name] = {
                    _render_labels(key).strip("{}"): value
                    for key, value in sorted(metric.series().items())
                }
            else:
                histograms[name] = {
                    _render_labels(key).strip("{}"): {
                        "count": series.count,
                        "sum": series.total,
                        "min": series.minimum if series.count else 0.0,
                        "max": series.maximum if series.count else 0.0,
                        "mean": series.total / series.count if series.count else 0.0,
                        "p50": series.percentile(0.50),
                        "p95": series.percentile(0.95),
                    }
                    for key, series in sorted(metric.series().items())
                }
        return {
            "enabled": self._enabled,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The snapshot serialised as JSON."""
        return json.dumps(self.snapshot(), indent=indent)

    def to_prometheus(self, prefix: str = "repro") -> str:
        """The snapshot in the Prometheus text exposition format.

        Dotted metric names become underscored and prefixed
        (``cache.hits`` -> ``repro_cache_hits``); histograms are
        rendered as summaries with ``quantile`` labels plus ``_sum``
        and ``_count`` series.
        """
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            flat = f"{prefix}_{name.replace('.', '_').replace('-', '_')}"
            if metric.help:
                lines.append(f"# HELP {flat} {metric.help}")
            if isinstance(metric, (Counter, Gauge)):
                lines.append(f"# TYPE {flat} {metric.kind}")
                for key, value in sorted(metric.series().items()):
                    lines.append(f"{flat}{_render_labels(key)} {value}")
            else:
                lines.append(f"# TYPE {flat} summary")
                for key, series in sorted(metric.series().items()):
                    for fraction in (0.5, 0.95, 0.99):
                        labelled = _render_labels(key + (("quantile", str(fraction)),))
                        lines.append(f"{flat}{labelled} {series.percentile(fraction)}")
                    lines.append(f"{flat}_sum{_render_labels(key)} {series.total}")
                    lines.append(f"{flat}_count{_render_labels(key)} {series.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:
        state = "enabled" if self._enabled else "disabled"
        return f"MetricsRegistry({len(self._metrics)} metrics, {state})"


def _env_truthy(value: str | None) -> bool:
    return (value or "").strip().lower() not in ("", "0", "false", "no", "off")


#: The process-wide default registry every library hook records into.
_REGISTRY = MetricsRegistry(enabled=_env_truthy(os.environ.get("REPRO_OBS")))


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def enable() -> None:
    """Enable recording on the default registry."""
    _REGISTRY.enable()


def disable() -> None:
    """Disable recording on the default registry."""
    _REGISTRY.disable()


def is_enabled() -> bool:
    """Whether the default registry is recording."""
    return _REGISTRY.enabled
