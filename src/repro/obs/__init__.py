"""Observability: metrics, trace spans and snapshot rendering.

The serving path (context resolution, ranking, caching, the
personalization service) charges counters, gauges and latency
histograms into a process-wide :class:`MetricsRegistry`; snapshots
render as JSON or Prometheus text. Recording is off by default (set
``REPRO_OBS=1`` or call :func:`enable`) and is engineered to cost one
branch per call site while disabled — see
``benchmarks/bench_obs_overhead.py`` for the measured bound.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable,
    enable,
    get_registry,
    is_enabled,
)
from repro.obs.trace import span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "disable",
    "enable",
    "get_registry",
    "is_enabled",
    "span",
]
