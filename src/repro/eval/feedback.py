"""Traceability-driven profile refinement (Sec. 5.1's feedback loop).

The usability study observes that when the system's ranking disagrees
with the user, "traceability helps a lot, since users can track back
which preferences were used to attain the results and either modify the
preferences or reconsider their ranking". This driver simulates that
loop: in each round the simulated user runs queries, measures the
disagreement, uses the result *provenance* to locate the preferences
that produced the disputed scores, and fixes the worst of them (sets
the score to their intrinsic taste). Agreement should climb round after
round - quantifying the paper's qualitative claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.context.state import ContextState
from repro.db.poi import generate_poi_relation
from repro.db.relation import Relation
from repro.preferences.preference import ContextualPreference
from repro.query.contextual_query import ContextualQuery
from repro.query.executor import ContextualQueryExecutor
from repro.tree.profile_tree import ProfileTree
from repro.workloads.users import CustomizationResult, Persona, SimulatedUser, study_environment

__all__ = ["FeedbackRound", "run_feedback_loop"]


@dataclass(frozen=True)
class FeedbackRound:
    """Outcome of one refinement round."""

    round_index: int
    agreement_pct: float
    fixes_applied: int


def _top_pids(executor, state: ContextState, top_k: int) -> set:
    result = executor.execute(ContextualQuery.at_state(state))
    return {item.row["pid"] for item in result.top(top_k)}, result


def run_feedback_loop(
    persona: Persona | None = None,
    rounds: int = 5,
    fixes_per_round: int = 3,
    queries_per_round: int = 8,
    top_k: int = 20,
    relation: Relation | None = None,
    seed: int = 23,
) -> list[FeedbackRound]:
    """Simulate ``rounds`` of query-inspect-fix refinement.

    Returns one :class:`FeedbackRound` per round. The served profile
    starts as a *barely customised* profile (a low-meticulousness
    editing session), so there is plenty of disagreement to repair.
    """
    environment = study_environment()
    persona = persona or Persona("30to50", "female", "mainstream")
    if relation is None:
        relation = generate_poi_relation(80, seed=seed)
    rng = np.random.default_rng(seed)

    user = SimulatedUser(1, persona, environment, meticulousness=0.0, seed=seed)
    session: CustomizationResult = user.customize()
    served = session.profile
    intrinsic = session.intrinsic_profile
    intrinsic_scores = {
        (preference.descriptor, preference.clause): preference.score
        for preference in intrinsic
    }
    truth = ContextualQueryExecutor(
        ProfileTree.from_profile(intrinsic), relation, metric="jaccard"
    )

    # A fixed detailed query workload for comparability across rounds.
    detailed = [parameter.dom for parameter in environment]
    states = []
    for _ in range(queries_per_round):
        values = tuple(domain[int(rng.integers(len(domain)))] for domain in detailed)
        states.append(ContextState(environment, values))

    history: list[FeedbackRound] = []
    for round_index in range(rounds):
        executor = ContextualQueryExecutor(
            ProfileTree.from_profile(served), relation, metric="jaccard"
        )
        agreements = []
        # (gap, insertion order) -> preference; worst gaps fixed first.
        disputed: dict[ContextualPreference, float] = {}
        for state in states:
            system_pids, result = _top_pids(executor, state, top_k)
            user_pids, _ = _top_pids(truth, state, top_k)
            if system_pids:
                agreements.append(100.0 * len(system_pids & user_pids) / len(system_pids))
            # Trace back every contribution of this result to a served
            # preference and record how far its score is from taste.
            for item in result.results:
                for contribution in item.contributions:
                    for preference in served:
                        if (
                            preference.clause == contribution.clause
                            and contribution.state
                            in preference.descriptor.states(environment)
                        ):
                            key = (preference.descriptor, preference.clause)
                            target = intrinsic_scores.get(key)
                            if target is None:
                                continue
                            gap = abs(preference.score - target)
                            if gap > 0:
                                disputed[preference] = gap
        agreement = sum(agreements) / len(agreements) if agreements else 0.0

        fixes = 0
        for preference in sorted(disputed, key=disputed.get, reverse=True):
            if fixes >= fixes_per_round:
                break
            key = (preference.descriptor, preference.clause)
            replacement = ContextualPreference(
                preference.descriptor, preference.clause, intrinsic_scores[key]
            )
            served.replace(preference, replacement)
            fixes += 1

        history.append(
            FeedbackRound(
                round_index=round_index,
                agreement_pct=round(agreement, 1),
                fixes_applied=fixes,
            )
        )
    return history
