"""Plain-text rendering of experiment results.

Every experiment driver returns structured data; these helpers render
them as the rows/series the paper's tables and figures report, so the
benchmark harness can print paper-comparable output.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an ASCII table with right-padded columns.

    Example:
        >>> print(format_table(["a", "b"], [[1, 2]], title="T"))
        T
        a  b
        -  -
        1  2
    """
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def render(row: Sequence[str]) -> str:
        return "  ".join(value.ljust(width) for value, width in zip(row, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render(list(headers)))
    lines.append(render(["-" * width for width in widths]))
    lines.extend(render(row) for row in cells)
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
) -> str:
    """Render one figure's series as a table: x column + one column per
    series (the format the paper's line plots reduce to)."""
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(values[index] for values in series.values())]
        for index, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)
