"""Sharded-serving driver: multi-process QPS scaling + rebalance audit.

The questions the sharding layer must answer with numbers:

* **Does throughput scale with worker processes?**
  :func:`run_shard_bench` replays one deterministic request set through
  a :class:`~repro.sharding.router.ShardRouter` at several worker
  counts and reports queries/second per count plus the speedup over a
  *single-process, in-process* baseline (the plain
  :class:`PersonalizationService`, same dataset, same simulated
  ``io_wait_ms`` per request). Each request models the serving-shaped
  unit of work of :mod:`repro.eval.serving`: a GIL-releasing I/O wait
  followed by the CPU-bound contextual query. Worker processes overlap
  the waits even on one core; on a multi-core host the CPU portion
  parallelises too.
* **Is sharding invisible to results?** Every ranked result from every
  worker count is compared against the baseline's rankings
  (``identical_output``); sharding must change *where* a query runs,
  never *what* it returns.
* **Does a crash stay invisible?** The chaos round installs a seeded
  ``worker.kill`` fault plan, re-runs the request set at the highest
  worker count, and verifies that after the mid-batch kill and the
  WAL-backed rebalance every request was answered exactly once with
  rankings still identical to the baseline
  (``identical_after_rebalance``).

The CLI front-end is ``python -m repro shard-bench``; the regression
benchmark (``benchmarks/bench_sharded.py``) serialises the report to
``BENCH_sharded.json``.
"""

from __future__ import annotations

import tempfile
import time
from collections.abc import Sequence
from pathlib import Path

from repro.context.state import ContextState
from repro.db.poi import generate_poi_relation
from repro.faults.registry import FaultSpec, fault_plan
from repro.query.contextual_query import ContextualQuery
from repro.service.personalization import PersonalizationService
from repro.sharding.router import ShardRouter
from repro.sharding.worker import ranking_pairs
from repro.workloads.streams import query_stream
from repro.workloads.users import Persona, all_personas, study_environment

__all__ = ["run_shard_bench"]

_POOL_PEOPLE = ("friends", "family", "alone")
_POOL_TEMPERATURES = ("warm", "hot", "cold")
_POOL_LOCATIONS = ("Plaka", "Kifisia", "Syntagma")

_TOP_K = 10


def _state_pool(environment) -> list[ContextState]:
    return [
        ContextState.from_mapping(
            environment,
            {
                "accompanying_people": people,
                "temperature": temperature,
                "location": location,
            },
        )
        for people in _POOL_PEOPLE
        for temperature in _POOL_TEMPERATURES
        for location in _POOL_LOCATIONS
    ]


def _population(num_users: int) -> list[tuple[str, Persona]]:
    personas = all_personas()
    return [
        (f"user{index}", personas[index % len(personas)])
        for index in range(num_users)
    ]


def _single_process_reference(
    num_users: int,
    num_rows: int,
    cache_capacity: int | None,
    io_wait: float,
    requests: list[tuple[str, ContextState]],
    seed: int,
) -> tuple[list[list[list[object]]], float]:
    """Run the request set on the plain in-process service.

    Returns the reference rankings (wire format, so they compare
    exactly against worker replies) and the timed seconds of the
    *second* pass - the first pass warms the per-user caches, matching
    the warmed runs the router counts are measured on.
    """
    environment = study_environment()
    relation = generate_poi_relation(num_rows, seed=seed)
    service = PersonalizationService(
        environment, relation, cache_capacity=cache_capacity
    )
    for user_id, persona in _population(num_users):
        service.register(user_id, persona)
    queries = [
        (user_id, ContextualQuery.at_state(state, top_k=_TOP_K))
        for user_id, state in requests
    ]
    for user_id, query in queries:  # warm-up pass (untimed)
        service.query(user_id, query)
    started = time.perf_counter()
    rankings = []
    for user_id, query in queries:
        if io_wait:
            time.sleep(io_wait)
        rankings.append(ranking_pairs(service.query(user_id, query)))
    elapsed = time.perf_counter() - started
    service.close()
    return rankings, elapsed


def run_shard_bench(
    num_users: int = 8,
    num_rows: int = 1500,
    num_queries: int = 160,
    worker_counts: Sequence[int] = (1, 2, 4),
    io_wait_ms: float = 15.0,
    worker_threads: int = 2,
    cache_capacity: int | None = 64,
    locality: float = 0.5,
    zipf_a: float = 1.1,
    seed: int = 17,
    chaos: bool = True,
    wal_root: str | Path | None = None,
) -> dict[str, object]:
    """Measure sharded throughput scaling and verify result identity.

    Builds the deterministic POI workload of :mod:`repro.eval.serving`
    (popularity skew ``zipf_a``, temporal ``locality``), then:

    1. runs the request set on a plain single-process service (warmed,
       with the same per-request ``io_wait_ms``) to get the baseline
       QPS and the reference rankings;
    2. for each entry of ``worker_counts``, starts a
       :class:`ShardRouter` over a fresh WAL directory, registers the
       population through it, replays the identical set once to warm
       the workers and once timed, and checks every ranking against
       the reference;
    3. with ``chaos`` on (and at least two workers at the top count),
       re-runs the set at the highest count under a seeded
       ``worker.kill`` plan: one worker is really killed mid-dispatch,
       the router rebalances from the WAL, and the round must end with
       every request answered exactly once, rankings unchanged.

    Returns a JSON-ready report; see ``BENCH_sharded.json``.
    """
    worker_counts = sorted({int(count) for count in worker_counts})
    if not worker_counts or worker_counts[0] < 1:
        raise ValueError("worker_counts must be positive integers")
    io_wait = max(0.0, io_wait_ms) / 1000.0

    environment = study_environment()
    pool = _state_pool(environment)
    states = list(
        query_stream(pool, num_queries, seed=seed, zipf_a=zipf_a, locality=locality)
    )
    requests = [
        (f"user{index % num_users}", state)
        for index, state in enumerate(states)
    ]
    population = _population(num_users)

    reference, baseline_seconds = _single_process_reference(
        num_users, num_rows, cache_capacity, io_wait, requests, seed
    )
    baseline_qps = (
        len(requests) / baseline_seconds if baseline_seconds > 0 else float("inf")
    )

    series: dict[str, dict[str, object]] = {}
    identical = True
    chaos_report: dict[str, object] = {"enabled": False}
    top_count = worker_counts[-1]
    batch = [(user_id, state, _TOP_K) for user_id, state in requests]

    for count in worker_counts:
        with tempfile.TemporaryDirectory(dir=wal_root) as shard_wal:
            with ShardRouter(
                count,
                wal_root=shard_wal,
                num_rows=num_rows,
                data_seed=seed,
                cache_capacity=cache_capacity,
                io_wait_ms=io_wait_ms,
                worker_threads=worker_threads,
            ) as router:
                router.register_many(population)
                router.query_many(batch)  # warm-up pass (untimed)
                started = time.perf_counter()
                replies = router.query_many(batch)
                elapsed = time.perf_counter() - started
                count_identical = all(
                    reply["ok"] and reply["ranking"] == expected
                    for reply, expected in zip(replies, reference)
                )
                identical = identical and count_identical
                qps = len(batch) / elapsed if elapsed > 0 else float("inf")
                series[str(count)] = {
                    "seconds": elapsed,
                    "qps": qps,
                    "speedup": qps / baseline_qps if baseline_qps else 0.0,
                    "identical": count_identical,
                }
                if chaos and count == top_count and count >= 2:
                    chaos_report = _run_chaos_round(
                        router, batch, reference, seed
                    )

    top = str(top_count)
    return {
        "workload": {
            "num_users": num_users,
            "num_rows": num_rows,
            "num_queries": num_queries,
            "worker_counts": worker_counts,
            "io_wait_ms": io_wait_ms,
            "worker_threads": worker_threads,
            "cache_capacity": cache_capacity,
            "locality": locality,
            "zipf_a": zipf_a,
            "seed": seed,
            "pool_states": len(pool),
            "top_k": _TOP_K,
        },
        "single_process": {
            "seconds": baseline_seconds,
            "qps": baseline_qps,
        },
        "series": series,
        "speedup_at_max": series[top]["speedup"],
        "identical_output": identical,
        "chaos": chaos_report,
    }


def _run_chaos_round(
    router: ShardRouter,
    batch: list,
    reference: list,
    seed: int,
) -> dict[str, object]:
    """Kill one worker mid-dispatch; audit the rebalanced round."""
    workers_before = list(router.workers)
    deaths_before = router.worker_deaths
    with fault_plan(
        [FaultSpec(site="worker.kill", kind="error", max_fires=1)],
        seed=seed,
    ):
        replies = router.query_many(batch)
    failed = sum(1 for reply in replies if not reply["ok"])
    duplicates = sum(1 for reply in replies if reply.get("duplicate"))
    identical_after = all(
        reply["ok"] and reply["ranking"] == expected
        for reply, expected in zip(replies, reference)
    )
    health = router.check_health()
    return {
        "enabled": True,
        "workers_before": workers_before,
        "workers_after": list(router.workers),
        "worker_deaths": router.worker_deaths - deaths_before,
        "rebalances": router.rebalances,
        "retried_requests": router.retried_requests,
        "answered": len(replies),
        "failed_requests": failed,
        "duplicate_replies": duplicates,
        "identical_after_rebalance": identical_after,
        "health": {
            name: {"alive": row["alive"], "breaker": row["breaker"]}
            for name, row in health.items()
        },
    }
