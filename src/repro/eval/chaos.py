"""Chaos driver: availability and latency under injected faults.

Two experiment drivers back the ``repro chaos`` CLI subcommand and
``benchmarks/bench_chaos.py``:

* :func:`run_chaos` - the headline experiment. A multi-user serving
  workload (the concurrent stress-test shape: shared POI relation,
  persona profiles, a skewed 12-state query pool, profile churn) is
  replayed for several rounds, each under a distinct **seeded fault
  schedule** (:func:`chaos_schedule`): injected errors, latency and
  cache corruption at the sites planted through the stack. The run is
  performed twice with identical schedules - once with
  :class:`~repro.resilience.ResiliencePolicies` configured (requests
  degrade down the ladder) and once without (requests fail) - so the
  report shows both what the resilience layer *delivers* (availability
  per degradation level, latency percentiles) and what the same faults
  *cost* without it. Completed requests are verified after every round:
  ``full``/``cache_bypass``/``scan`` answers must match a fault-free
  recomputation exactly, ``generalized`` answers must match the
  fault-free answer at the generalized state, ``unranked`` answers must
  be all-zero-scored.
* :func:`run_chaos_overhead` - the cost of the machinery when *unused*:
  the same serving workload with no fault plan installed, timed with
  resilience policies absent vs. configured as **paired rounds**
  (median of paired ratios, the ``BENCH_obs.json`` technique), bounding
  the healthy-path cost of the ladder + hooks.
"""

from __future__ import annotations

import random
import time

from repro.context.state import ContextState
from repro.db.poi import generate_poi_relation
from repro.exceptions import (
    ReproError,
    RequestTimeout,
    ServiceUnavailable,
)
from repro.faults.registry import FaultSpec, fault_plan
from repro.obs.metrics import get_registry
from repro.query.contextual_query import ContextualQuery
from repro.query.resilient import generalize_state
from repro.resilience import ResiliencePolicies
from repro.service.personalization import PersonalizationService
from repro.workloads.users import all_personas, study_environment

__all__ = ["chaos_schedule", "run_chaos", "run_chaos_overhead"]

#: Sites the default schedule draws from, with the fault kinds that
#: make sense there. ``executor.submit`` error faults are excluded on
#: purpose: they fail a request *before* it reaches the degradation
#: ladder, so they measure the executor, not the resilience layer (the
#: shed/timeout paths have their own typed-outcome coverage).
_SCHEDULE_SITES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("cache.get", ("error", "corrupt", "latency")),
    ("cache.put", ("error",)),
    ("relation.select", ("error", "latency")),
    ("relation.index_build", ("error",)),
    ("resolution.search_cs", ("error", "latency")),
    ("executor.request", ("latency",)),
    ("service.edit", ("error",)),
)

_POOL_PEOPLE = ("friends", "family", "alone")
_POOL_TEMPERATURES = ("warm", "cold")
_POOL_LOCATIONS = ("Plaka", "Kifisia")

#: Degradation levels whose rankings must equal the fault-free full
#: path (they change evaluation strategy, not semantics).
_EXACT_LEVELS = ("full", "cache_bypass", "scan")


def chaos_schedule(seed: int = 23, rounds: int = 5) -> list[list[FaultSpec]]:
    """A seeded, randomized fault schedule: one spec list per round.

    Each round draws 2-4 sites from :data:`_SCHEDULE_SITES`, one spec
    per site with a random kind, a firing probability in [0.08, 0.35]
    and (for latency faults) a 1-4 ms delay. The schedule is a pure
    function of ``seed``: building it twice yields *fresh but
    identical* :class:`FaultSpec` objects, which is how the resilient
    and resilience-disabled runs replay the same failures.
    """
    rng = random.Random(f"chaos-schedule:{seed}")
    schedule: list[list[FaultSpec]] = []
    for _ in range(rounds):
        chosen = rng.sample(list(_SCHEDULE_SITES), k=rng.randint(2, 4))
        specs = []
        for site, kinds in chosen:
            kind = rng.choice(kinds)
            specs.append(
                FaultSpec(
                    site=site,
                    kind=kind,
                    probability=round(rng.uniform(0.08, 0.35), 3),
                    delay=round(rng.uniform(0.001, 0.004), 4)
                    if kind == "latency"
                    else 0.0,
                )
            )
        schedule.append(specs)
    return schedule


def _chaos_states(environment) -> list[ContextState]:
    """The stress-test's 12-state query pool."""
    return [
        ContextState.from_mapping(
            environment,
            {
                "accompanying_people": people,
                "temperature": temperature,
                "location": location,
            },
        )
        for people in _POOL_PEOPLE
        for temperature in _POOL_TEMPERATURES
        for location in _POOL_LOCATIONS
    ]


def _signature(result) -> tuple:
    """Order-sensitive ranking fingerprint, stable across row objects."""
    return tuple(
        (item.row.get("pid", id(item.row)), round(item.score, 12))
        for item in result.results
    )


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _build_service(
    num_users: int,
    num_rows: int,
    seed: int,
    resilient: bool,
) -> tuple[PersonalizationService, list[str]]:
    environment = study_environment()
    relation = generate_poi_relation(num_rows, seed=seed)
    service = PersonalizationService(
        environment,
        relation,
        cache_capacity=32,
        resilience=ResiliencePolicies() if resilient else None,
    )
    personas = all_personas()
    user_ids = [f"user{index}" for index in range(num_users)]
    for index, user_id in enumerate(user_ids):
        service.register(user_id, personas[index % len(personas)])
    return service, user_ids


def _merge_fired(total: dict[str, dict[str, int]], fired: dict) -> None:
    for site, kinds in fired.items():
        bucket = total.setdefault(site, {})
        for kind, count in kinds.items():
            bucket[kind] = bucket.get(kind, 0) + count


def _classify_failure(error: BaseException, failures: dict[str, int]) -> None:
    # Order matters: RequestTimeout subclasses ServiceUnavailable.
    if isinstance(error, RequestTimeout):
        failures["request_timeout"] += 1
    elif isinstance(error, ServiceUnavailable):
        failures["service_unavailable"] += 1
    else:
        failures["fault"] += 1


def _run_mode(
    resilient: bool,
    num_users: int,
    num_rows: int,
    rounds: int,
    queries_per_round: int,
    edits_per_round: int,
    concurrent_batch: int,
    max_workers: int,
    seed: int,
) -> dict[str, object]:
    """Replay the seeded chaos workload in one mode; gather the tallies.

    The request stream (which user queries which state, which profiles
    are edited) and the fault schedule are both pure functions of
    ``seed``, so the resilient and baseline runs face identical
    workloads and identical per-site fault sequences.
    """
    service, user_ids = _build_service(num_users, num_rows, seed, resilient)
    pool = [
        ContextualQuery.at_state(state, top_k=10)
        for state in _chaos_states(service.environment)
    ]
    rng = random.Random(f"chaos-requests:{seed}")
    schedule = chaos_schedule(seed=seed, rounds=rounds)

    total = 0
    completed = 0
    served: dict[str, int] = {}
    failures = {"service_unavailable": 0, "request_timeout": 0, "fault": 0}
    edit_failures = 0
    edits_applied = 0
    latencies: list[float] = []
    fired_total: dict[str, dict[str, int]] = {}
    checked = 0
    mismatches = 0

    for round_index, specs in enumerate(schedule):
        verifiable: list[tuple[str, ContextualQuery, str, tuple]] = []
        with fault_plan(specs, seed=seed * 1000 + round_index) as faults:
            # Profile churn first: edits either land atomically or are
            # rejected fail-fast by an injected ``service.edit`` fault.
            for edit in range(edits_per_round):
                user_id = user_ids[
                    (round_index * edits_per_round + edit) % len(user_ids)
                ]
                repository = service.account(user_id).repository
                preference = next(iter(repository))
                new_score = round(
                    0.1 + ((preference.score * 100 + 7 * (round_index + 1)) % 90) / 100,
                    2,
                )
                try:
                    service.update_preference(user_id, preference, new_score)
                    edits_applied += 1
                except ReproError:
                    edit_failures += 1

            # Sequential phase: per-request latency is measured here.
            for _ in range(queries_per_round):
                user_id = rng.choice(user_ids)
                query = rng.choice(pool)
                total += 1
                start = time.perf_counter()
                try:
                    result = service.query(user_id, query)
                except ReproError as error:
                    _classify_failure(error, failures)
                else:
                    latencies.append(time.perf_counter() - start)
                    completed += 1
                    level = result.degradation
                    served[level] = served.get(level, 0) + 1
                    verifiable.append(
                        (user_id, query, level, _signature(result))
                    )

            # Concurrent phase: the same faults under a thread pool
            # (exercises the executor.request site and batch outcomes).
            batch = [
                (rng.choice(user_ids), rng.choice(pool))
                for _ in range(concurrent_batch)
            ]
            total += len(batch)
            outcomes = service.query_many(batch, max_workers=max_workers)
            for outcome in outcomes:
                if outcome.status == "ok":
                    completed += 1
                    level = outcome.result.degradation
                    served[level] = served.get(level, 0) + 1
                elif outcome.error is not None:
                    _classify_failure(outcome.error, failures)
                else:
                    failures["fault"] += 1
            _merge_fired(fired_total, faults.counts())

        # Faults are now cleared: every completed sequential request is
        # checked against a fault-free recomputation (the profile has
        # not changed since the round's edits ran).
        for user_id, query, level, signature in verifiable:
            checked += 1
            if level == "unranked":
                if any(score != 0.0 for _, score in signature):
                    mismatches += 1
                continue
            if level == "generalized":
                expected_query = ContextualQuery.at_state(
                    generalize_state(query.current_state), top_k=query.top_k
                )
            else:
                expected_query = query
            expected = _signature(service.query(user_id, expected_query))
            if level in _EXACT_LEVELS or level == "generalized":
                if signature != expected:
                    mismatches += 1

    return {
        "requests": total,
        "completed": completed,
        "availability": completed / total if total else 0.0,
        "served_by_level": dict(sorted(served.items())),
        "failures": failures,
        "edits_applied": edits_applied,
        "edit_failures": edit_failures,
        "latency_ms": {
            "p50": _percentile(latencies, 0.50) * 1000.0,
            "p99": _percentile(latencies, 0.99) * 1000.0,
            "max": max(latencies, default=0.0) * 1000.0,
        },
        "faults_fired": dict(sorted(fired_total.items())),
        "correctness": {"checked": checked, "mismatches": mismatches},
    }


def run_chaos(
    num_users: int = 6,
    num_rows: int = 400,
    rounds: int = 5,
    queries_per_round: int = 40,
    edits_per_round: int = 4,
    concurrent_batch: int = 16,
    max_workers: int = 4,
    seed: int = 23,
    with_baseline: bool = True,
) -> dict[str, object]:
    """The chaos experiment: same fault schedule, with and without
    the resilience layer.

    Returns ``{"workload": ..., "schedule": ..., "resilient": ...,
    "baseline": ..., "baseline_demonstrably_fails": ...}`` where the
    two mode reports carry availability, per-degradation-level serve
    counts, latency percentiles, fault accounting and the post-round
    correctness audit. ``baseline_demonstrably_fails`` is True when the
    unprotected run failed requests the resilient run served.
    """
    registry = get_registry()
    was_enabled = registry.enabled
    registry.reset()
    registry.enable()
    try:
        resilient = _run_mode(
            True,
            num_users,
            num_rows,
            rounds,
            queries_per_round,
            edits_per_round,
            concurrent_batch,
            max_workers,
            seed,
        )
        baseline: dict[str, object] | None = None
        if with_baseline:
            baseline = _run_mode(
                False,
                num_users,
                num_rows,
                rounds,
                queries_per_round,
                edits_per_round,
                concurrent_batch,
                max_workers,
                seed,
            )
        snapshot = registry.snapshot()
    finally:
        if not was_enabled:
            registry.disable()

    schedule = chaos_schedule(seed=seed, rounds=rounds)
    report: dict[str, object] = {
        "workload": {
            "num_users": num_users,
            "num_rows": num_rows,
            "rounds": rounds,
            "queries_per_round": queries_per_round,
            "edits_per_round": edits_per_round,
            "concurrent_batch": concurrent_batch,
            "max_workers": max_workers,
            "seed": seed,
        },
        "schedule": [
            [
                {
                    "site": spec.site,
                    "kind": spec.kind,
                    "probability": spec.probability,
                    "delay": spec.delay,
                }
                for spec in specs
            ]
            for specs in schedule
        ],
        "resilient": resilient,
        "resilience_counters": {
            name: series
            for name, series in snapshot.get("counters", {}).items()
            if name.startswith(("resilience.", "faults.", "service.shed",
                                "service.timeouts"))
        },
    }
    if baseline is not None:
        report["baseline"] = baseline
        baseline_failed = sum(baseline["failures"].values())
        report["baseline_demonstrably_fails"] = bool(
            baseline_failed > 0
            and resilient["availability"] > baseline["availability"]
        )
    return report


def run_chaos_overhead(
    num_users: int = 4,
    num_rows: int = 1500,
    num_queries: int = 40,
    seed: int = 13,
    repeats: int = 9,
) -> dict[str, object]:
    """Healthy-path cost of the fault hooks + resilience layer.

    No fault plan is installed and the metrics registry is left
    disabled, so both timed modes pay the hooks' single
    ``enabled``-check branch. The paired comparison is resilience
    policies *absent* (the plain executor path) vs. *configured* (every
    query walks through the degradation ladder's ``full`` level): each
    of ``repeats`` rounds times both modes back to back and contributes
    one ratio; the reported overhead is the **median of paired
    ratios**, which cancels machine-phase noise the way the
    ``BENCH_obs.json`` methodology does. Rankings are asserted
    identical across modes. Caching is disabled so every query pays
    full resolution + ranking - the worst case for relative overhead.
    """
    environment = study_environment()
    relation = generate_poi_relation(num_rows, seed=seed)
    personas = all_personas()
    user_ids = [f"user{index}" for index in range(num_users)]
    services = {}
    for mode, policies in (
        ("plain", None),
        ("resilient", ResiliencePolicies()),
    ):
        service = PersonalizationService(
            environment, relation, cache_capacity=None, resilience=policies
        )
        for index, user_id in enumerate(user_ids):
            service.register(user_id, personas[index % len(personas)])
        services[mode] = service

    pool = [
        ContextualQuery.at_state(state, top_k=10)
        for state in _chaos_states(environment)
    ]
    requests = [
        (user_ids[index % len(user_ids)], pool[index % len(pool)])
        for index in range(num_queries)
    ]

    def run_once(service: PersonalizationService) -> list[tuple]:
        return [
            _signature(service.query(user_id, query))
            for user_id, query in requests
        ]

    # Warm-up outside the timed rounds (lazy executors, auto-indexes).
    for service in services.values():
        run_once(service)

    times: dict[str, list[float]] = {"plain": [], "resilient": []}
    outputs: dict[str, list[tuple] | None] = {"plain": None, "resilient": None}
    for _ in range(repeats):
        for mode, service in services.items():
            start = time.perf_counter()
            outputs[mode] = run_once(service)
            times[mode].append(time.perf_counter() - start)

    ratios = [
        resilient_time / plain_time
        for plain_time, resilient_time in zip(times["plain"], times["resilient"])
        if plain_time > 0
    ]
    ratios.sort()
    middle = len(ratios) // 2
    if not ratios:
        overhead_ratio = float("inf")
    elif len(ratios) % 2:
        overhead_ratio = ratios[middle]
    else:
        overhead_ratio = (ratios[middle - 1] + ratios[middle]) / 2.0
    return {
        "workload": {
            "num_users": num_users,
            "num_rows": num_rows,
            "num_queries": num_queries,
            "seed": seed,
            "repeats": repeats,
        },
        "plain_seconds": _percentile(times["plain"], 0.5),
        "resilient_seconds": _percentile(times["resilient"], 0.5),
        "overhead_ratio": overhead_ratio,
        "overhead_pct": (overhead_ratio - 1.0) * 100.0,
        "identical_output": outputs["plain"] == outputs["resilient"],
    }
