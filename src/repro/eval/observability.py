"""Observability drivers: scripted serving workload + overhead bound.

Two experiment drivers back the ``repro stats`` CLI subcommand and
``benchmarks/bench_obs_overhead.py``:

* :func:`run_scripted_workload` - a deterministic multi-user
  personalization session (registrations, cached queries over a skewed
  state pool, edits, an export/import round-trip, an
  unregister) executed with metrics enabled; returns the registry
  snapshot plus a flat summary of the numbers the paper's Sec. 5
  reports (hit rates, evictions, indexed vs. scanned selections) and
  per-stage latency percentiles.
* :func:`run_obs_overhead` - the cost of the metrics layer itself on
  the ranking hot path: the ``BENCH_rank.json`` workload run with the
  registry disabled and enabled, best-of-``repeats`` wall-clock each,
  proving the layer is ~free when off and <5% when on.
"""

from __future__ import annotations

import random
import time

from repro.db.poi import generate_poi_relation
from repro.db.relation import Relation
from repro.eval.rank_costs import (
    _bench_profile_and_pool,
    _bench_rows,
    _bench_schema,
    _signature,
)
from repro.obs.metrics import get_registry
from repro.query.contextual_query import ContextualQuery
from repro.query.rank import rank_cs_batch
from repro.resolution.resolver import ContextResolver
from repro.service.personalization import PersonalizationService
from repro.tree.profile_tree import ProfileTree
from repro.workloads.users import all_personas, study_environment

__all__ = ["run_obs_overhead", "run_scripted_workload", "summarize_snapshot"]

_POOL_PEOPLE = ("friends", "family", "alone")
_POOL_TEMPERATURES = ("warm", "hot", "cold")
_POOL_LOCATIONS = ("Plaka", "Kifisia", "Syntagma")


def summarize_snapshot(snapshot: dict) -> dict[str, object]:
    """Flatten a registry snapshot into the headline serving numbers.

    Counter label series are summed; histograms are reduced to
    ``{stage: {count, mean, p50, p95}}`` keyed by the stage name
    (``latency.`` prefix stripped).
    """
    counters = {
        name: sum(series.values())
        for name, series in snapshot.get("counters", {}).items()
    }
    hits = counters.get("cache.hits", 0.0)
    misses = counters.get("cache.misses", 0.0)
    lookups = hits + misses
    stages = {
        name.removeprefix("latency."): {
            "count": sum(series["count"] for series in by_label.values()),
            "mean": max((series["mean"] for series in by_label.values()), default=0.0),
            "p50": max((series["p50"] for series in by_label.values()), default=0.0),
            "p95": max((series["p95"] for series in by_label.values()), default=0.0),
        }
        for name, by_label in snapshot.get("histograms", {}).items()
        if name.startswith("latency.")
    }
    return {
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_rate": hits / lookups if lookups else 0.0,
        "cache_evictions": counters.get("cache.evictions", 0.0),
        "cache_invalidations": counters.get("cache.invalidations", 0.0),
        "selections_indexed": counters.get("relation.select.indexed", 0.0),
        "selections_scan": counters.get("relation.select.scan", 0.0),
        "queries": counters.get("executor.queries", 0.0),
        "plain_fallbacks": counters.get("executor.plain_fallbacks", 0.0),
        "states_resolved": counters.get("resolver.states_resolved", 0.0),
        "stages": stages,
    }


def run_scripted_workload(
    num_users: int = 4,
    num_queries: int = 60,
    num_rows: int = 2000,
    cache_capacity: int = 8,
    seed: int = 11,
) -> dict[str, object]:
    """One deterministic serving session, measured end to end.

    Builds a POI relation and a :class:`PersonalizationService`,
    registers ``num_users`` users (cycling the 12 study personas), runs
    ``num_queries`` contextual queries over a Zipf-ish pool of repeated
    context states (so the per-user caches both hit and evict), applies
    a few profile edits, round-trips one profile through
    export/import, and performs one register -> query -> unregister
    lifecycle. The process registry is enabled (and reset) for the
    duration; its prior state is restored before returning.

    Returns ``{"workload": ..., "summary": ..., "snapshot": ...,
    "prometheus": ..., "service_statistics": ...}``.
    """
    registry = get_registry()
    was_enabled = registry.enabled
    registry.reset()
    registry.enable()
    try:
        rng = random.Random(seed)
        environment = study_environment()
        relation = generate_poi_relation(num_rows, seed=seed)
        service = PersonalizationService(
            environment, relation, cache_capacity=cache_capacity
        )
        personas = all_personas()
        user_ids = [f"user{index}" for index in range(num_users)]
        for index, user_id in enumerate(user_ids):
            service.register(user_id, personas[index % len(personas)])

        # A skewed pool of context states: repetition is what makes the
        # per-user caches hit; the pool exceeding the cache capacity is
        # what makes them evict.
        pool = [
            ContextualQuery.at_state(
                _state(environment, people, temp, location),
                top_k=10,
            )
            for people in _POOL_PEOPLE
            for temp in _POOL_TEMPERATURES
            for location in _POOL_LOCATIONS
        ]
        for index in range(num_queries):
            user_id = user_ids[index % len(user_ids)]
            # Zipf-ish skew: half the traffic goes to the head states.
            position = min(
                rng.randrange(len(pool)), rng.randrange(len(pool))
            )
            service.query(user_id, pool[position])

        # Profile edits: bump the score of each user's first preference.
        for user_id in user_ids[: max(1, num_users // 2)]:
            repository = service.account(user_id).repository
            preference = next(iter(repository))
            service.update_preference(
                user_id, preference, round(min(1.0, preference.score + 0.05), 2)
            )

        # Export/import round-trip (same environment: accepted).
        service.import_profile(user_ids[0], service.export_profile(user_ids[0]))
        service.query(user_ids[0], pool[0])

        # One full lifecycle: the transient user's cache listener must
        # not outlive the account.
        service.register("transient", personas[-1])
        service.query("transient", pool[1])
        service.unregister("transient")

        snapshot = registry.snapshot()
        prometheus = registry.to_prometheus()
        return {
            "workload": {
                "num_users": num_users,
                "num_queries": num_queries,
                "num_rows": num_rows,
                "cache_capacity": cache_capacity,
                "seed": seed,
                "pool_states": len(pool),
            },
            "summary": summarize_snapshot(snapshot),
            "snapshot": snapshot,
            "prometheus": prometheus,
            "service_statistics": service.statistics(),
            "relation_listeners": relation.mutation_listener_count,
        }
    finally:
        if not was_enabled:
            registry.disable()


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def _state(environment, people: str, temperature: str, location: str):
    from repro.context.state import ContextState

    return ContextState.from_mapping(
        environment,
        {
            "accompanying_people": people,
            "temperature": temperature,
            "location": location,
        },
    )


def run_obs_overhead(
    num_rows: int = 100_000,
    num_queries: int = 30,
    pool_size: int = 15,
    clauses_per_state: int = 2,
    num_buckets: int = 200,
    seed: int = 11,
    repeats: int = 15,
    baseline_indexed_seconds: float | None = None,
) -> dict[str, object]:
    """Measure the metrics layer's cost on the ranking hot path.

    Runs the exact indexed+batched workload of
    :func:`repro.eval.rank_costs.run_rank_hotpath` (the one behind the
    checked-in ``BENCH_rank.json``) with the process registry disabled
    and enabled. Machine noise on shared hardware is bimodal and
    dwarfs the layer's real cost, so the overhead statistic is the
    **median of paired ratios**: each of ``repeats`` rounds times both
    modes back-to-back (same machine phase) and contributes one
    enabled/disabled ratio; the median of those ratios cancels the
    phase noise that corrupts any min- or mean-of-mode comparison.
    Ranked outputs are asserted identical across modes.

    Args:
        baseline_indexed_seconds: The ``indexed_seconds`` recorded in
            ``BENCH_rank.json``, for the enabled-vs-baseline
            comparison; omit to skip it.

    Returns a dict with per-mode seconds, the enabled-vs-disabled
    overhead (ratio and percent) and, when a baseline was given, the
    enabled-vs-baseline percent.
    """
    rows = _bench_rows(num_rows, num_buckets, seed)
    relation = Relation("bench_obs", _bench_schema(), rows, auto_index=True)
    relation.create_index("bucket")
    profile, pool = _bench_profile_and_pool(pool_size, clauses_per_state, num_buckets)
    resolver = ContextResolver(ProfileTree.from_profile(profile))
    descriptors = [pool[index % len(pool)] for index in range(num_queries)]

    registry = get_registry()
    was_enabled = registry.enabled
    times: dict[bool, list[float]] = {False: [], True: []}
    outputs: dict[bool, list | None] = {False: None, True: None}
    try:
        # Warm-up outside the timed runs (index caches, code paths).
        registry.disable()
        rank_cs_batch(resolver, relation, descriptors)
        for _ in range(repeats):
            for enabled in (False, True):
                if enabled:
                    registry.enable()
                else:
                    registry.disable()
                start = time.perf_counter()
                run_outputs, _stats = rank_cs_batch(resolver, relation, descriptors)
                times[enabled].append(time.perf_counter() - start)
                outputs[enabled] = run_outputs
    finally:
        if was_enabled:
            registry.enable()
        else:
            registry.disable()
    disabled_outputs, enabled_outputs = outputs[False], outputs[True]
    disabled_seconds = _median(times[False])
    enabled_seconds = _median(times[True])

    identical = all(
        _signature(disabled_ranked) == _signature(enabled_ranked)
        for (disabled_ranked, _), (enabled_ranked, _) in zip(
            disabled_outputs, enabled_outputs
        )
    )
    ratios = [
        enabled_time / disabled_time
        for disabled_time, enabled_time in zip(times[False], times[True])
        if disabled_time > 0
    ]
    overhead_ratio = _median(ratios) if ratios else float("inf")
    report: dict[str, object] = {
        "workload": {
            "num_rows": num_rows,
            "num_queries": num_queries,
            "pool_size": pool_size,
            "clauses_per_state": clauses_per_state,
            "num_buckets": num_buckets,
            "seed": seed,
            "repeats": repeats,
        },
        "disabled_seconds": disabled_seconds,
        "enabled_seconds": enabled_seconds,
        "disabled_min_seconds": min(times[False]),
        "enabled_min_seconds": min(times[True]),
        "overhead_ratio": overhead_ratio,
        "overhead_pct": (overhead_ratio - 1.0) * 100.0,
        "identical_output": identical,
    }
    if baseline_indexed_seconds is not None:
        report["baseline_indexed_seconds"] = baseline_indexed_seconds
        report["enabled_vs_baseline_pct"] = (
            (enabled_seconds / baseline_indexed_seconds) - 1.0
        ) * 100.0
        report["disabled_vs_baseline_pct"] = (
            (disabled_seconds / baseline_indexed_seconds) - 1.0
        ) * 100.0
    return report
