"""Profile-tree size experiments (Sec. 5.2, Figs. 5 and 6).

Three drivers:

* :func:`fig5_real_profile` - the 522-preference real profile, six
  parameter orderings, cells and bytes (Fig. 5).
* :func:`fig6_size_sweep` - synthetic profiles of 500..10000
  preferences over 50/100/1000-value domains, uniform or zipf(1.5)
  context values, six orderings plus the serial baseline (Fig. 6 left
  and center).
* :func:`fig6_skew_sweep` - 5000 preferences over 50/100/200-value
  domains where the 200-value parameter's skew ``a`` sweeps 0..3.5,
  showing the ordering crossover (Fig. 6 right).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.context.environment import ContextEnvironment
from repro.preferences.profile import Profile
from repro.tree.cost import StorageCostModel
from repro.tree.profile_tree import ProfileTree
from repro.workloads.real_profile import generate_real_profile
from repro.workloads.synthetic import ProfileSpec, generate_profile, synthetic_environment

__all__ = [
    "OrderingSize",
    "SizeExperiment",
    "measure_orderings",
    "fig5_real_profile",
    "fig6_size_sweep",
    "fig6_skew_sweep",
]


@dataclass(frozen=True)
class OrderingSize:
    """Tree size under one parameter-to-level ordering."""

    label: str
    ordering: tuple[str, ...]
    cells: int
    num_bytes: int


@dataclass(frozen=True)
class SizeExperiment:
    """Sizes of one profile under several orderings plus the serial
    baseline."""

    title: str
    orderings: tuple[OrderingSize, ...]
    serial_cells: int
    serial_bytes: int

    def cells_by_label(self) -> dict[str, int]:
        """``{ordering label: cells}`` including ``serial``."""
        result = {entry.label: entry.cells for entry in self.orderings}
        result["serial"] = self.serial_cells
        return result

    def bytes_by_label(self) -> dict[str, int]:
        """``{ordering label: bytes}`` including ``serial``."""
        result = {entry.label: entry.num_bytes for entry in self.orderings}
        result["serial"] = self.serial_bytes
        return result


def _six_orderings(names: Sequence[str]) -> dict[str, tuple[str, ...]]:
    """The paper's order 1..6 labels over three parameter names
    (given in ascending domain-size order)."""
    small, medium, large = names
    return {
        "order1": (small, medium, large),
        "order2": (small, large, medium),
        "order3": (medium, small, large),
        "order4": (medium, large, small),
        "order5": (large, small, medium),
        "order6": (large, medium, small),
    }


def measure_orderings(
    profile: Profile,
    orderings: dict[str, tuple[str, ...]],
    cost_model: StorageCostModel | None = None,
    title: str = "tree sizes",
) -> SizeExperiment:
    """Build one tree per ordering and measure cells/bytes."""
    cost_model = cost_model or StorageCostModel()
    measured = []
    for label, ordering in orderings.items():
        tree = ProfileTree.from_profile(profile, ordering)
        size = cost_model.tree_size(tree)
        measured.append(OrderingSize(label, ordering, size.cells, size.num_bytes))
    serial = cost_model.serial_size(profile)
    return SizeExperiment(
        title=title,
        orderings=tuple(measured),
        serial_cells=serial.cells,
        serial_bytes=serial.num_bytes,
    )


def fig5_real_profile(
    seed: int = 42, cost_model: StorageCostModel | None = None
) -> SizeExperiment:
    """Fig. 5: the real profile's tree size under the six orderings.

    Order 1 is (accompanying_people, time, location) - ascending domain
    sizes 4/17/100 - through order 6 = (location, time,
    accompanying_people), exactly the paper's labelling.
    """
    environment, profile = generate_real_profile(seed=seed)
    names = ("accompanying_people", "time", "location")
    return measure_orderings(
        profile,
        _six_orderings(names),
        cost_model,
        title="Fig. 5 - profile tree size, real profile (522 preferences)",
    )


def fig6_size_sweep(
    distribution: str = "uniform",
    profile_sizes: Sequence[int] = (500, 1000, 5000, 10000),
    zipf_a: float = 1.5,
    seed: int = 17,
    cost_model: StorageCostModel | None = None,
    environment: ContextEnvironment | None = None,
) -> dict[str, list[int]]:
    """Fig. 6 (left/center): tree cells vs. profile size.

    Returns ``{label: [cells per profile size]}`` for order1..order6
    and ``serial``; ``distribution`` is ``"uniform"`` or ``"zipf"``.
    """
    if distribution not in ("uniform", "zipf"):
        raise ValueError(f"unknown distribution {distribution!r}")
    environment = environment or synthetic_environment()
    orderings = _six_orderings(environment.names)
    series: dict[str, list[int]] = {label: [] for label in orderings}
    series["serial"] = []
    for size in profile_sizes:
        spec = ProfileSpec(
            num_preferences=size,
            zipf_a=zipf_a if distribution == "zipf" else 0.0,
            seed=seed,
        )
        profile = generate_profile(environment, spec)
        experiment = measure_orderings(profile, orderings, cost_model)
        for label, cells in experiment.cells_by_label().items():
            series[label].append(cells)
    return series


def fig6_skew_sweep(
    a_values: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5),
    num_preferences: int = 5000,
    seed: int = 17,
    cost_model: StorageCostModel | None = None,
) -> dict[str, list[int]]:
    """Fig. 6 (right): cells vs. skew of the 200-value parameter.

    The profile has 5000 preferences over domains of 50, 100 and 200
    values; the 50/100 parameters stay uniform while the 200 parameter's
    zipf exponent sweeps ``a_values``. The three measured orderings are
    the paper's: order1 = (50, 100, 200), order2 = (50, 200, 100),
    order3 = (200, 50, 100).
    """
    environment = synthetic_environment(
        domain_sizes=(50, 100, 200), num_levels=(2, 3, 3)
    )
    small, medium, large = environment.names
    orderings = {
        "order1": (small, medium, large),
        "order2": (small, large, medium),
        "order3": (large, small, medium),
    }
    series: dict[str, list[int]] = {label: [] for label in orderings}
    series["serial"] = []
    for a in a_values:
        spec = ProfileSpec(
            num_preferences=num_preferences,
            zipf_a_per_parameter=(0.0, 0.0, a),
            seed=seed,
        )
        profile = generate_profile(environment, spec)
        experiment = measure_orderings(profile, orderings, cost_model)
        for label, cells in experiment.cells_by_label().items():
            series[label].append(cells)
    return series
