"""One-shot report: every experiment, rendered to Markdown.

``python -m repro report`` runs the whole evaluation (Table 1 and
Figs. 5-7) and renders a self-contained Markdown report with the same
tables the benchmarks print, plus the qualitative checks of each
paper shape. ``quick=True`` shrinks the sweeps for smoke runs.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.eval.accesses import fig7_real_profile, fig7_synthetic
from repro.eval.sizes import fig5_real_profile, fig6_size_sweep, fig6_skew_sweep
from repro.eval.usability import run_usability_study

__all__ = ["generate_report"]

_FULL_SIZES = (500, 1000, 5000, 10000)
_QUICK_SIZES = (200, 500)
_FULL_SKEWS = (0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5)
_QUICK_SKEWS = (0.0, 1.5, 3.0)


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines.extend(
        "| " + " | ".join(str(value) for value in row) + " |" for row in rows
    )
    return "\n".join(lines)


def _series_table(x_label: str, x_values, series: dict) -> str:
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(values[index] for values in series.values())]
        for index, x in enumerate(x_values)
    ]
    return _md_table(headers, rows)


def _check(label: str, passed: bool) -> str:
    return f"- {'PASS' if passed else 'FAIL'}: {label}"


def generate_report(quick: bool = False, seed: int = 17) -> str:
    """Run every experiment and return the Markdown report."""
    sizes = _QUICK_SIZES if quick else _FULL_SIZES
    skews = _QUICK_SKEWS if quick else _FULL_SKEWS
    sections: list[str] = [
        "# Evaluation report - Adding Context to Preferences (ICDE 2007)",
        f"_mode: {'quick' if quick else 'full'}; all workloads seeded._",
    ]

    # ------------------------------------------------------------ Table 1
    study = run_usability_study()
    sections.append("## Table 1 - usability study (simulated users)")
    sections.append(
        _md_table(
            ["", *[f"User {row.user_id}" for row in study.rows]],
            [
                ["Num of updates", *[row.num_updates for row in study.rows]],
                ["Update time (mins)", *[row.update_time_minutes for row in study.rows]],
                ["Exact match", *[f"{row.exact_match_pct:.0f}%" for row in study.rows]],
                ["1 cover state", *[f"{row.one_cover_pct:.0f}%" for row in study.rows]],
                ["Hierarchy", *[f"{row.multi_cover_hierarchy_pct:.0f}%" for row in study.rows]],
                ["Jaccard", *[f"{row.multi_cover_jaccard_pct:.0f}%" for row in study.rows]],
            ],
        )
    )
    sections.append(
        "\n".join(
            [
                _check(
                    "Jaccard >= Hierarchy on average",
                    study.mean("multi_cover_jaccard_pct")
                    >= study.mean("multi_cover_hierarchy_pct"),
                ),
                _check("exact-match agreement >= 70%", study.mean("exact_match_pct") >= 70),
            ]
        )
    )

    # -------------------------------------------------------------- Fig. 5
    fig5 = fig5_real_profile()
    cells = fig5.cells_by_label()
    num_bytes = fig5.bytes_by_label()
    labels = ["serial", *[f"order{i}" for i in range(1, 7)]]
    sections.append("## Fig. 5 - profile tree size, real profile")
    sections.append(
        _md_table(
            ["ordering", "cells", "bytes"],
            [[label, cells[label], num_bytes[label]] for label in labels],
        )
    )
    sections.append(
        "\n".join(
            [
                _check(
                    "every tree below serial (cells and bytes)",
                    all(cells[l] < cells["serial"] for l in labels[1:])
                    and all(num_bytes[l] < num_bytes["serial"] for l in labels[1:]),
                ),
                _check("order1 (large domains low) is smallest",
                       cells["order1"] == min(cells[l] for l in labels[1:])),
            ]
        )
    )

    # -------------------------------------------------------------- Fig. 6
    uniform = fig6_size_sweep("uniform", sizes, seed=seed)
    zipf = fig6_size_sweep("zipf", sizes, seed=seed)
    skew = fig6_skew_sweep(skews, seed=seed)
    sections.append("## Fig. 6 - synthetic tree sizes")
    sections.append("### left: uniform\n" + _series_table("#prefs", sizes, uniform))
    sections.append("### center: zipf(1.5)\n" + _series_table("#prefs", sizes, zipf))
    sections.append("### right: skew sweep\n" + _series_table("a", skews, skew))
    sections.append(
        "\n".join(
            [
                _check("zipf trees smaller than uniform",
                       zipf["order1"][-1] < uniform["order1"][-1]),
                _check(
                    "skew crossover: big-domain-high wins at high skew",
                    skew["order3"][-1] < skew["order1"][-1],
                ),
            ]
        )
    )

    # -------------------------------------------------------------- Fig. 7
    real = fig7_real_profile()
    synthetic = fig7_synthetic("uniform", sizes, seed=seed)
    sections.append("## Fig. 7 - resolution cell accesses")
    sections.append(
        "### left: real profile\n"
        + _md_table(
            ["method", "mean cells/query"],
            [[label, f"{m.mean_cells:.1f}"] for label, m in real.items()],
        )
    )
    sections.append(
        "### center/right: synthetic (uniform)\n"
        + _series_table(
            "#prefs",
            sizes,
            {k: [f"{v:.1f}" for v in vs] for k, vs in synthetic.items()},
        )
    )
    sections.append(
        "\n".join(
            [
                _check(
                    "tree beats scan on the real profile",
                    real["tree_exact"].mean_cells < real["serial_exact"].mean_cells
                    and real["tree_cover"].mean_cells < real["serial_cover"].mean_cells,
                ),
                _check(
                    "scan grows linearly, tree nearly flat",
                    synthetic["serial_exact"][-1] > 2 * synthetic["serial_exact"][0]
                    and synthetic["tree_exact"][-1] < 5 * max(synthetic["tree_exact"][0], 1),
                ),
            ]
        )
    )

    return "\n\n".join(sections) + "\n"
