"""Experiment drivers reproducing the paper's evaluation (Sec. 5)."""

from repro.eval.accesses import (
    AccessMeasurement,
    fig7_real_profile,
    fig7_synthetic,
    measure_accesses,
)
from repro.eval.chaos import chaos_schedule, run_chaos, run_chaos_overhead
from repro.eval.chaos_sharded import chaos_sharded_schedule, run_chaos_sharded
from repro.eval.persistence import (
    kill_restart_schedule,
    run_kill_restart,
    run_paging_bench,
)
from repro.eval.observability import (
    run_obs_overhead,
    run_scripted_workload,
    summarize_snapshot,
)
from repro.eval.rank_costs import (
    SelectCost,
    measure_select_costs,
    rank_access_sweep,
    run_rank_hotpath,
)
from repro.eval.reporting import format_series, format_table
from repro.eval.serving import run_serve_bench
from repro.eval.sharding import run_shard_bench
from repro.eval.sizes import (
    OrderingSize,
    SizeExperiment,
    fig5_real_profile,
    fig6_size_sweep,
    fig6_skew_sweep,
    measure_orderings,
)
from repro.eval.usability import (
    UsabilityStudy,
    UserStudyRow,
    classify_states,
    run_usability_study,
)

__all__ = [
    "AccessMeasurement",
    "OrderingSize",
    "SelectCost",
    "SizeExperiment",
    "UsabilityStudy",
    "UserStudyRow",
    "chaos_schedule",
    "chaos_sharded_schedule",
    "classify_states",
    "fig5_real_profile",
    "fig6_size_sweep",
    "fig6_skew_sweep",
    "fig7_real_profile",
    "fig7_synthetic",
    "format_series",
    "format_table",
    "kill_restart_schedule",
    "measure_accesses",
    "measure_orderings",
    "measure_select_costs",
    "rank_access_sweep",
    "run_chaos",
    "run_chaos_overhead",
    "run_chaos_sharded",
    "run_kill_restart",
    "run_obs_overhead",
    "run_paging_bench",
    "run_rank_hotpath",
    "run_scripted_workload",
    "run_serve_bench",
    "run_shard_bench",
    "run_usability_study",
    "summarize_snapshot",
]
