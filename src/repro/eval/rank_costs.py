"""Indexed vs. sequential cost of the ranking hot path.

``Rank_CS`` evaluates every winning attribute clause as a selection
over the relation; the paper's cost model counts the *cells* an
algorithm touches (Sec. 5.2). This module extends that accounting to
the relation side: a sequential selection touches one cell per row,
an indexed selection touches hash-bucket / ``bisect`` / posting cells
(:mod:`repro.db.index`). Two experiment drivers report the comparison:

* :func:`measure_select_costs` - cell accesses of one clause workload
  over the same rows, sequential vs. indexed;
* :func:`rank_access_sweep` - the paper-style sweep: mean cells per
  ranking selection as the relation grows;
* :func:`run_rank_hotpath` - the end-to-end wall-clock benchmark
  behind ``benchmarks/bench_rank_hotpath.py``: per-descriptor
  ``rank_cs`` with sequential scans against batched
  ``rank_cs_batch`` over an indexed relation, asserting identical
  ranked output.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

from repro.context.descriptor import ContextDescriptor
from repro.db.poi import POI_TYPES, generate_poi_relation
from repro.db.relation import Relation
from repro.db.schema import Attribute, Schema
from repro.preferences.preference import AttributeClause, ContextualPreference
from repro.preferences.profile import Profile
from repro.query.rank import rank_cs, rank_cs_batch
from repro.resolution.resolver import ContextResolver
from repro.tree.counters import AccessCounter
from repro.tree.profile_tree import ProfileTree
from repro.workloads.users import study_environment

__all__ = [
    "SelectCost",
    "measure_select_costs",
    "rank_access_sweep",
    "run_rank_hotpath",
]


@dataclass(frozen=True)
class SelectCost:
    """Cell accesses of one selection workload over one access path."""

    label: str
    total_cells: int
    scan_cells: int
    index_cells: int
    num_selects: int

    @property
    def mean_cells(self) -> float:
        """Mean cells per selection (0.0 for an empty workload)."""
        return self.total_cells / self.num_selects if self.num_selects else 0.0


def measure_select_costs(
    relation: Relation, clauses: Sequence[AttributeClause]
) -> dict[str, SelectCost]:
    """Cell accesses of ``clauses`` over ``relation``, both paths.

    The relation is cloned twice (same rows): once without indexes so
    every selection scans, once with ``auto_index`` so every indexable
    selection probes. Returns measurements keyed ``sequential`` and
    ``indexed``.
    """
    clauses = list(clauses)
    sequential = Relation(relation.name, relation.schema, relation)
    indexed = Relation(relation.name, relation.schema, relation, auto_index=True)
    results: dict[str, SelectCost] = {}
    for label, variant in (("sequential", sequential), ("indexed", indexed)):
        counter = AccessCounter()
        for clause in clauses:
            variant.select_ids(clause, counter)
        results[label] = SelectCost(
            label=label,
            total_cells=counter.cells,
            scan_cells=counter.scan_cells,
            index_cells=counter.index_cells,
            num_selects=len(clauses),
        )
    return results


def _poi_clause_workload(relation: Relation) -> list[AttributeClause]:
    """A ranking-shaped clause workload over the POI relation: one
    equality per type and location plus a few admission-cost ranges."""
    clauses = [AttributeClause("type", poi_type) for poi_type in POI_TYPES]
    clauses += [
        AttributeClause("location", location)
        for location in relation.distinct_values("location")
    ]
    clauses += [
        AttributeClause("admission_cost", 5.0, "<="),
        AttributeClause("admission_cost", 20.0, ">="),
        AttributeClause("admission_cost", 10.0, "<"),
    ]
    return clauses


def rank_access_sweep(
    relation_sizes: Sequence[int] = (1000, 5000, 10000),
    seed: int = 7,
) -> dict[str, list[float]]:
    """Mean cells per ranking selection vs. relation size.

    The paper's Fig. 7 shape, transposed to the relation side of
    ``Rank_CS``: the sequential series grows linearly with ``|R|``
    while the indexed series tracks result sizes only.

    Returns ``{series: [mean cells per relation size]}`` with series
    ``sequential`` and ``indexed``.
    """
    series: dict[str, list[float]] = {"sequential": [], "indexed": []}
    for size in relation_sizes:
        relation = generate_poi_relation(size, seed=seed)
        costs = measure_select_costs(relation, _poi_clause_workload(relation))
        for label in series:
            series[label].append(costs[label].mean_cells)
    return series


# ----------------------------------------------------------------------
# End-to-end hot-path benchmark driver
# ----------------------------------------------------------------------
_BENCH_TYPES = tuple(POI_TYPES)


def _bench_schema() -> Schema:
    return Schema(
        [
            Attribute("pid", "int"),
            Attribute("bucket", "int"),
            Attribute("type", "str"),
            Attribute("cost", "float"),
        ]
    )


def _bench_rows(num_rows: int, num_buckets: int, seed: int) -> list[dict[str, object]]:
    """Deterministic synthetic rows; ``bucket`` is the selective attribute
    (~``num_rows / num_buckets`` rows each), scattered so no index can
    exploit physical clustering."""
    rows = []
    for pid in range(num_rows):
        scattered = (pid * 7919 + seed) % num_buckets
        rows.append(
            {
                "pid": pid,
                "bucket": scattered,
                "type": _BENCH_TYPES[(pid * 31 + seed) % len(_BENCH_TYPES)],
                "cost": round(((pid * 131 + seed) % 2500) / 100.0, 2),
            }
        )
    return rows


def _bench_profile_and_pool(
    num_states: int, clauses_per_state: int, num_buckets: int
) -> tuple[Profile, list[ContextDescriptor]]:
    """A profile of ``num_states`` detailed context states, each carrying
    ``clauses_per_state`` selective ``bucket =`` clauses, plus the
    matching descriptor pool."""
    environment = study_environment()
    people = ("friends", "family", "alone")
    temperatures = ("freezing", "cold", "mild", "warm", "hot")
    locations = ("Plaka", "Kifisia", "Syntagma", "Perama", "Ladadika", "Kastra", "Ledra")
    profile = Profile(environment)
    pool: list[ContextDescriptor] = []
    for index in range(num_states):
        mapping = {
            "accompanying_people": people[index % len(people)],
            "temperature": temperatures[(index // len(people)) % len(temperatures)],
            "location": locations[index % len(locations)],
        }
        descriptor = ContextDescriptor.from_mapping(mapping)
        for offset in range(clauses_per_state):
            bucket = (index * clauses_per_state + offset) % num_buckets
            score = round(0.95 - 0.9 * ((index + offset) % 10) / 10.0, 2)
            profile.add(
                ContextualPreference(
                    descriptor, AttributeClause("bucket", bucket), score
                )
            )
        pool.append(descriptor)
    return profile, pool


def _signature(ranked) -> list[tuple[object, float]]:
    return [(item.row["pid"], item.score) for item in ranked]


def run_rank_hotpath(
    num_rows: int = 100_000,
    num_queries: int = 30,
    pool_size: int = 15,
    clauses_per_state: int = 2,
    num_buckets: int = 200,
    seed: int = 11,
) -> dict[str, object]:
    """Sequential per-descriptor ranking vs. indexed batched ranking.

    Builds a ``num_rows`` synthetic relation, a profile whose winning
    clauses each select ~``num_rows / num_buckets`` rows, and a query
    workload of ``num_queries`` descriptors cycling through a pool of
    ``pool_size`` context states (real context workloads repeat
    states). Then:

    * **sequential** - the pre-index code path: one ``rank_cs`` per
      descriptor over an unindexed relation (every clause is a full
      scan, re-run per descriptor);
    * **indexed** - one ``rank_cs_batch`` over an indexed relation
      (each distinct state resolved once, each distinct clause probed
      once).

    Both paths must produce identical scores and order for every
    descriptor; the returned dict carries timings, the speedup, the
    cell-access comparison and the batch memo statistics, and is what
    ``benchmarks/bench_rank_hotpath.py`` serialises to
    ``BENCH_rank.json``.
    """
    rows = _bench_rows(num_rows, num_buckets, seed)
    schema = _bench_schema()
    sequential_relation = Relation("bench_hotpath", schema, rows)
    indexed_relation = Relation("bench_hotpath", schema, rows, auto_index=True)
    # Index construction is one-time setup amortised over the
    # relation's lifetime; build it eagerly and report its cost
    # separately instead of charging it to the first query.
    start = time.perf_counter()
    indexed_relation.create_index("bucket")
    index_build_seconds = time.perf_counter() - start

    profile, pool = _bench_profile_and_pool(pool_size, clauses_per_state, num_buckets)
    tree = ProfileTree.from_profile(profile)
    resolver = ContextResolver(tree)
    descriptors = [pool[index % len(pool)] for index in range(num_queries)]

    sequential_counter = AccessCounter()
    start = time.perf_counter()
    sequential_outputs = [
        rank_cs(resolver, sequential_relation, descriptor, counter=sequential_counter)
        for descriptor in descriptors
    ]
    sequential_seconds = time.perf_counter() - start

    indexed_counter = AccessCounter()
    start = time.perf_counter()
    batched_outputs, stats = rank_cs_batch(
        resolver, indexed_relation, descriptors, counter=indexed_counter
    )
    indexed_seconds = time.perf_counter() - start

    identical = all(
        _signature(sequential_ranked) == _signature(batched_ranked)
        for (sequential_ranked, _), (batched_ranked, _) in zip(
            sequential_outputs, batched_outputs
        )
    )
    mean_result_size = (
        sum(len(ranked) for ranked, _ in batched_outputs) / len(batched_outputs)
        if batched_outputs
        else 0.0
    )
    return {
        "workload": {
            "num_rows": num_rows,
            "num_queries": num_queries,
            "pool_size": pool_size,
            "clauses_per_state": clauses_per_state,
            "num_buckets": num_buckets,
            "seed": seed,
            "mean_result_size": mean_result_size,
        },
        "index_build_seconds": index_build_seconds,
        "sequential_seconds": sequential_seconds,
        "indexed_seconds": indexed_seconds,
        "speedup": (
            sequential_seconds / indexed_seconds if indexed_seconds > 0 else float("inf")
        ),
        "identical_output": identical,
        "cells": {
            "sequential": {
                "total": sequential_counter.cells,
                "scan": sequential_counter.scan_cells,
                "indexed": sequential_counter.index_cells,
            },
            "indexed": {
                "total": indexed_counter.cells,
                "scan": indexed_counter.scan_cells,
                "indexed": indexed_counter.index_cells,
            },
            "scan_to_index_ratio": (
                sequential_counter.scan_cells / indexed_counter.index_cells
                if indexed_counter.index_cells
                else float("inf")
            ),
        },
        "batch_stats": {
            "descriptors": stats.descriptors,
            "state_lookups": stats.state_lookups,
            "unique_states": stats.unique_states,
            "state_memo_hits": stats.state_memo_hits,
            "clause_lookups": stats.clause_lookups,
            "unique_clauses": stats.unique_clauses,
            "clause_memo_hits": stats.clause_memo_hits,
        },
    }
