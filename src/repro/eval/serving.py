"""Concurrent-serving drivers: thread scaling and correctness under churn.

Two questions the locking layer must answer with numbers, not
assertions:

* **Does read throughput scale?** :func:`run_serve_bench` replays one
  deterministic request set through the
  :class:`~repro.concurrency.ConcurrentQueryExecutor` at several
  worker counts and reports queries/second per count plus the speedup
  over one worker. Each request models a serving-shaped unit of work:
  a short I/O wait (the row-store fetch / client round-trip, simulated
  with a GIL-releasing sleep) followed by the CPU-bound contextual
  query. Under CPython's GIL only the I/O portion can overlap, so the
  measured scaling is exactly what the lock layer controls: a
  coarse-grained design would serialise the waits too and scale at
  1.0x. The ``io_wait_ms`` knob is recorded in the report; set it to 0
  to see the (GIL-bound) pure-CPU curve.
* **Is it correct under churn?** The driver re-runs the workload at
  the highest worker count while writer threads edit disjoint user
  profiles through the same service, then verifies zero failed
  requests and that every ranked result of the *quiescent* scaling
  runs is identical to the sequential baseline.

The CLI front-end is ``python -m repro serve-bench``; the regression
benchmark (``benchmarks/bench_concurrency.py``) serialises the report
to ``BENCH_concurrency.json``.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence

from repro.concurrency.executor import ConcurrentQueryExecutor
from repro.concurrency.locks import Mutex
from repro.db.poi import generate_poi_relation
from repro.query.contextual_query import ContextualQuery
from repro.service.personalization import PersonalizationService
from repro.workloads.streams import query_stream
from repro.workloads.users import all_personas, study_environment

__all__ = ["run_serve_bench"]

_POOL_PEOPLE = ("friends", "family", "alone")
_POOL_TEMPERATURES = ("warm", "hot", "cold")
_POOL_LOCATIONS = ("Plaka", "Kifisia", "Syntagma")


def _state_pool(environment):
    from repro.context.state import ContextState

    return [
        ContextState.from_mapping(
            environment,
            {
                "accompanying_people": people,
                "temperature": temperature,
                "location": location,
            },
        )
        for people in _POOL_PEOPLE
        for temperature in _POOL_TEMPERATURES
        for location in _POOL_LOCATIONS
    ]


def _ranking_signature(result) -> tuple:
    """A comparable fingerprint of one ranked result set."""
    return tuple(
        (item.row.get("pid", id(item.row)), round(item.score, 12))
        for item in result.results
    )


def run_serve_bench(
    num_users: int = 8,
    num_rows: int = 1500,
    num_queries: int = 160,
    thread_counts: Sequence[int] = (1, 2, 4),
    io_wait_ms: float = 6.0,
    num_writers: int = 4,
    edits_per_writer: int = 10,
    cache_capacity: int | None = 64,
    locality: float = 0.5,
    zipf_a: float = 1.1,
    seed: int = 17,
) -> dict[str, object]:
    """Measure concurrent read-query throughput and verify correctness.

    Builds a POI relation and a :class:`PersonalizationService` with
    ``num_users`` registered personas, derives a deterministic request
    set from :func:`repro.workloads.streams.query_stream` (popularity
    skew ``zipf_a``, temporal ``locality``), then:

    1. executes the set sequentially (in-thread) to warm the per-user
       caches and record the reference rankings;
    2. for each entry of ``thread_counts``, replays the identical set
       through a :class:`ConcurrentQueryExecutor` with that many
       workers, timing the batch and checking every ranking against
       the reference;
    3. re-runs at the highest count while ``num_writers`` threads
       apply ``edits_per_writer`` profile edits each (to their own
       users) through the same service - the churn phase must finish
       with zero failed requests and every writer's modification count
       intact.

    Returns a JSON-ready report; see ``BENCH_concurrency.json``.
    """
    thread_counts = sorted({int(count) for count in thread_counts})
    if not thread_counts or thread_counts[0] < 1:
        raise ValueError("thread_counts must be positive integers")
    io_wait = max(0.0, io_wait_ms) / 1000.0

    environment = study_environment()
    relation = generate_poi_relation(num_rows, seed=seed)
    service = PersonalizationService(
        environment, relation, cache_capacity=cache_capacity
    )
    personas = all_personas()
    user_ids = [f"user{index}" for index in range(num_users)]
    for index, user_id in enumerate(user_ids):
        service.register(user_id, personas[index % len(personas)])

    pool = _state_pool(environment)
    states = list(
        query_stream(pool, num_queries, seed=seed, zipf_a=zipf_a, locality=locality)
    )
    requests = [
        (user_ids[index % num_users], ContextualQuery.at_state(state, top_k=10))
        for index, state in enumerate(states)
    ]

    # 1. Sequential warm-up + reference rankings.
    warm_started = time.perf_counter()
    reference = [
        _ranking_signature(service.query(user_id, query))
        for user_id, query in requests
    ]
    warm_seconds = time.perf_counter() - warm_started

    def request_callable(user_id: str, query: ContextualQuery):
        def call():
            if io_wait:
                time.sleep(io_wait)
            return service.query(user_id, query)

        return call

    # 2. Quiescent scaling runs (no writers) over the warmed caches.
    series: dict[str, dict[str, float]] = {}
    identical = True
    base_qps: float | None = None
    for count in thread_counts:
        callables = [request_callable(*request) for request in requests]
        with ConcurrentQueryExecutor(max_workers=count) as executor:
            started = time.perf_counter()
            outcomes = executor.run(callables)
            elapsed = time.perf_counter() - started
        for outcome, expected in zip(outcomes, reference):
            if not outcome.ok or _ranking_signature(outcome.result) != expected:
                identical = False
        qps = len(requests) / elapsed if elapsed > 0 else float("inf")
        if base_qps is None:
            base_qps = qps
        series[str(count)] = {
            "seconds": elapsed,
            "qps": qps,
            "speedup": qps / base_qps if base_qps else 0.0,
        }

    # 3. Churn phase: readers at max width, writers editing profiles.
    churn = _run_churn_phase(
        service,
        requests,
        request_callable,
        max(thread_counts),
        num_writers,
        edits_per_writer,
    )

    top = str(thread_counts[-1])
    return {
        "workload": {
            "num_users": num_users,
            "num_rows": num_rows,
            "num_queries": num_queries,
            "thread_counts": thread_counts,
            "io_wait_ms": io_wait_ms,
            "cache_capacity": cache_capacity,
            "locality": locality,
            "zipf_a": zipf_a,
            "seed": seed,
            "pool_states": len(pool),
        },
        "warm_seconds": warm_seconds,
        "series": series,
        "speedup_at_max": series[top]["speedup"],
        "identical_output": identical,
        "churn": churn,
    }


def _run_churn_phase(
    service: PersonalizationService,
    requests,
    request_callable,
    max_workers: int,
    num_writers: int,
    edits_per_writer: int,
) -> dict[str, object]:
    """Readers and writers interleaved over one shared service."""
    errors: list[str] = []
    errors_lock = Mutex(name="serving.errors")
    modifications_before = {
        row["user_id"]: row["modifications"] for row in service.statistics()
    }

    def writer(user_id: str) -> None:
        try:
            for _ in range(edits_per_writer):
                repository = service.account(user_id).repository
                preference = next(iter(repository))
                service.update_preference(
                    user_id,
                    preference,
                    round(min(0.95, max(0.05, preference.score + 0.01)), 2),
                )
        except Exception as error:  # pragma: no cover - failure reporting
            with errors_lock:
                errors.append(f"writer {user_id}: {error!r}")

    writer_ids = [
        row["user_id"] for row in service.statistics()[: max(0, num_writers)]
    ]
    threads = [
        threading.Thread(target=writer, args=(user_id,), daemon=True)
        for user_id in writer_ids
    ]
    callables = [request_callable(*request) for request in requests]
    with ConcurrentQueryExecutor(max_workers=max_workers) as executor:
        for thread in threads:
            thread.start()
        outcomes = executor.run(callables)
        for thread in threads:
            thread.join()
    failed = [outcome for outcome in outcomes if not outcome.ok]
    modifications_after = {
        row["user_id"]: row["modifications"] for row in service.statistics()
    }
    lost_updates = sum(
        1
        for user_id in writer_ids
        if modifications_after[user_id] - modifications_before[user_id]
        != edits_per_writer
    )
    return {
        "num_writers": len(writer_ids),
        "edits_per_writer": edits_per_writer,
        "queries": len(outcomes),
        "failed_requests": len(failed) + len(errors),
        "lost_updates": lost_updates,
        "errors": errors[:5],
    }
