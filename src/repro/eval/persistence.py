"""Persistence drivers: crash recovery and million-user paging.

Two experiment drivers back the ``repro persistence`` CLI subcommand
and ``benchmarks/bench_persistence.py``:

* :func:`run_kill_restart` - the durability experiment. Two services
  replay an identical seeded workload of profile edits and queries: a
  **reference** service that never crashes (plain in-memory) and a
  **durable** service backed by a :class:`~repro.storage.ProfileStore`
  that is killed and restarted after every round (the live object is
  dropped without shutdown and, for the flat-file backend, a torn
  partial record is appended to the WAL to simulate a write cut off
  mid-line). Some rounds run under seeded ``storage.append`` error
  faults (:func:`kill_restart_schedule`): an edit whose WAL append
  fails must be rolled back atomically, so the reference service skips
  exactly those edits. After every restart the recovered service's
  rankings for **every user at every pool state** must equal the
  reference's - byte-identical recovery, the acceptance criterion.
* :func:`run_paging_bench` - the scale experiment. ``num_users``
  (a million and up) are bulk-registered **cold** through the WAL,
  then a zipf-skewed query workload whose working set far exceeds
  ``hydrated_budget`` drives transparent hydration and LRU eviction;
  the peak hydrated-account count is sampled after every query and
  must never exceed the budget. The run ends with a full snapshot and
  a timed cold recovery that must find every registered user.
"""

from __future__ import annotations

import random
import time
from pathlib import Path

import numpy as np

from repro.context.state import ContextState
from repro.db.poi import generate_poi_relation
from repro.exceptions import ReproError
from repro.faults.registry import FaultSpec, fault_plan
from repro.query.contextual_query import ContextualQuery
from repro.service.personalization import PersonalizationService
from repro.storage import JsonlProfileStore, ProfileStore, SQLiteProfileStore
from repro.workloads.users import all_personas, study_environment
from repro.workloads.zipf import ZipfSampler

__all__ = ["kill_restart_schedule", "run_kill_restart", "run_paging_bench"]

_POOL_PEOPLE = ("friends", "family", "alone")
_POOL_TEMPERATURES = ("warm", "cold")
_POOL_LOCATIONS = ("Plaka", "Kifisia")


def _pool_states(environment) -> list[ContextState]:
    """The serving pool: the stress tests' 12 context states."""
    return [
        ContextState.from_mapping(
            environment,
            {
                "accompanying_people": people,
                "temperature": temperature,
                "location": location,
            },
        )
        for people in _POOL_PEOPLE
        for temperature in _POOL_TEMPERATURES
        for location in _POOL_LOCATIONS
    ]


def _signature(result) -> tuple:
    """Order-sensitive ranking fingerprint, stable across row objects."""
    return tuple(
        (item.row.get("pid", id(item.row)), round(item.score, 12))
        for item in result.results
    )


def _open_store(backend: str, root: Path) -> ProfileStore:
    if backend == "jsonl":
        return JsonlProfileStore(root / "store")
    if backend == "sqlite":
        return SQLiteProfileStore(root / "store.db")
    raise ReproError(f"unknown storage backend {backend!r}")


def kill_restart_schedule(
    seed: int = 29, rounds: int = 4
) -> list[dict[str, object]]:
    """A seeded kill/restart schedule: one plan dict per round.

    Each round's plan fixes whether the durable service is **killed**
    after the round (always, except a seeded ~1-in-4 clean round),
    whether a **snapshot** (with WAL compaction) is taken before the
    kill, and the round's ``storage.append`` error-fault probability
    (0 on roughly half the rounds). Like
    :func:`~repro.eval.chaos.chaos_schedule`, the schedule is a pure
    function of ``seed`` so a failing run can be replayed exactly.
    """
    rng = random.Random(f"kill-restart:{seed}")
    schedule = []
    for _ in range(rounds):
        schedule.append(
            {
                "kill": rng.random() < 0.75,
                "snapshot": rng.random() < 0.5,
                "append_fault_probability": (
                    round(rng.uniform(0.15, 0.45), 3)
                    if rng.random() < 0.5
                    else 0.0
                ),
            }
        )
    if not any(plan["kill"] for plan in schedule):
        schedule[-1]["kill"] = True  # the experiment must crash at least once
    return schedule


def run_kill_restart(
    num_users: int = 8,
    num_rows: int = 300,
    rounds: int = 4,
    edits_per_round: int = 6,
    queries_per_round: int = 24,
    hydrated_budget: int | None = 4,
    backend: str = "jsonl",
    seed: int = 29,
    root: str | Path | None = None,
    torn_writes: bool = True,
) -> dict[str, object]:
    """Kill/restart chaos: recovered rankings must equal a run that
    never crashed.

    Returns a report whose headline fields are ``recovery_rate`` (the
    fraction of registered profiles present after every restart, 1.0
    required), ``ranking_mismatches`` (recovered vs reference ranking
    fingerprints, 0 required) and ``identical_after_recovery``.
    """
    import tempfile

    cleanup = None
    if root is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-killrestart-")
        root = cleanup.name
    root = Path(root)
    try:
        return _run_kill_restart(
            num_users,
            num_rows,
            rounds,
            edits_per_round,
            queries_per_round,
            hydrated_budget,
            backend,
            seed,
            root,
            torn_writes,
        )
    finally:
        if cleanup is not None:
            cleanup.cleanup()


def _run_kill_restart(
    num_users: int,
    num_rows: int,
    rounds: int,
    edits_per_round: int,
    queries_per_round: int,
    hydrated_budget: int | None,
    backend: str,
    seed: int,
    root: Path,
    torn_writes: bool,
) -> dict[str, object]:
    environment = study_environment()
    personas = all_personas()
    user_ids = [f"user{index}" for index in range(num_users)]

    def durable_service(store: ProfileStore) -> PersonalizationService:
        # Fresh relation per incarnation (same seed = same rows, same
        # rankings); a crashed service's cache listeners die with it.
        return PersonalizationService(
            environment,
            generate_poi_relation(num_rows, seed=seed),
            cache_capacity=8,
            store=store,
            hydrated_budget=hydrated_budget,
        )

    reference = PersonalizationService(
        environment, generate_poi_relation(num_rows, seed=seed), cache_capacity=8
    )
    store = _open_store(backend, root)
    durable = durable_service(store)
    for index, user_id in enumerate(user_ids):
        persona = personas[index % len(personas)]
        reference.register(user_id, persona)
        durable.register(user_id, persona)

    pool = [
        ContextualQuery.at_state(state, top_k=10)
        for state in _pool_states(environment)
    ]
    rng = random.Random(f"kill-restart-workload:{seed}")
    schedule = kill_restart_schedule(seed=seed, rounds=rounds)

    edits_applied = 0
    edits_rejected = 0
    ranking_checks = 0
    ranking_mismatches = 0
    restarts = 0
    torn_tails_repaired = 0
    round_reports: list[dict[str, object]] = []

    for round_index, plan in enumerate(schedule):
        probability = float(plan["append_fault_probability"])
        specs = (
            [FaultSpec(site="storage.append", kind="error",
                       probability=probability)]
            if probability > 0.0
            else []
        )
        applied_this_round = 0
        rejected_this_round = 0
        with fault_plan(specs, seed=seed * 100 + round_index):
            for _ in range(edits_per_round):
                user_id = rng.choice(user_ids)
                action = rng.choice(("update", "remove_add", "import"))
                # Each step runs on the durable service first: if its
                # WAL append fails, that step was rolled back
                # atomically, so the reference skips exactly that step
                # (fail-atomicity is part of what recovery equality
                # then proves). Steps are derived from the reference's
                # profile - identical to the durable's by induction -
                # so both services stay in lockstep.
                for step in _edit_steps(reference, user_id, action):
                    try:
                        step(durable)
                    except ReproError:
                        rejected_this_round += 1
                        break
                    step(reference)
                    applied_this_round += 1
            for _ in range(queries_per_round):
                user_id = rng.choice(user_ids)
                query = rng.choice(pool)
                ranking_checks += 1
                if _signature(durable.query(user_id, query)) != _signature(
                    reference.query(user_id, query)
                ):
                    ranking_mismatches += 1
        edits_applied += applied_this_round
        edits_rejected += rejected_this_round

        if plan["snapshot"]:
            durable.snapshot(compact=True)
        if plan["kill"]:
            # Crash: drop the live service without any shutdown, then
            # bring a new incarnation up from disk alone.
            durable = None
            store.flush()  # the OS-level state a real crash leaves
            if torn_writes and backend == "jsonl":
                with open(root / "store" / "wal.jsonl", "a",
                          encoding="utf-8") as handle:
                    handle.write('{"lsn": 999999, "crc": 1, "data": {"op": "u')
            store = _open_store(backend, root)
            if getattr(store, "torn_bytes", 0):
                torn_tails_repaired += 1
            durable = durable_service(store)
            restarts += 1
            recovered = len(durable)
            expected = len(reference)
            mismatch_before = ranking_mismatches
            for user_id in user_ids:
                for query in pool:
                    ranking_checks += 1
                    if _signature(durable.query(user_id, query)) != _signature(
                        reference.query(user_id, query)
                    ):
                        ranking_mismatches += 1
            round_reports.append(
                {
                    "round": round_index,
                    "plan": plan,
                    "edits_applied": applied_this_round,
                    "edits_rejected": rejected_this_round,
                    "recovered_profiles": recovered,
                    "expected_profiles": expected,
                    "post_recovery_mismatches": ranking_mismatches
                    - mismatch_before,
                    "replayed_records": durable.last_recovery.replayed,
                    "snapshot_lsn": durable.last_recovery.snapshot_lsn,
                }
            )
        else:
            round_reports.append(
                {
                    "round": round_index,
                    "plan": plan,
                    "edits_applied": applied_this_round,
                    "edits_rejected": rejected_this_round,
                }
            )

    recovered_totals = [
        (entry["recovered_profiles"], entry["expected_profiles"])
        for entry in round_reports
        if "recovered_profiles" in entry
    ]
    recovery_rate = (
        min(rec / exp for rec, exp in recovered_totals)
        if recovered_totals
        else 1.0
    )
    durable.close()
    return {
        "workload": {
            "num_users": num_users,
            "num_rows": num_rows,
            "rounds": rounds,
            "edits_per_round": edits_per_round,
            "queries_per_round": queries_per_round,
            "hydrated_budget": hydrated_budget,
            "backend": backend,
            "seed": seed,
            "torn_writes": torn_writes,
        },
        "rounds": round_reports,
        "restarts": restarts,
        "torn_tails_repaired": torn_tails_repaired,
        "edits_applied": edits_applied,
        "edits_rejected": edits_rejected,
        "recovery_rate": recovery_rate,
        "ranking_checks": ranking_checks,
        "ranking_mismatches": ranking_mismatches,
        "identical_after_recovery": ranking_mismatches == 0
        and recovery_rate == 1.0,
    }


def _edit_steps(
    reference: PersonalizationService, user_id: str, action: str
) -> list:
    """The action as single-mutation closures, derived from the
    reference's current profile (identical to the durable's by
    induction) so the same steps apply verbatim to either service."""
    repository = reference.account(user_id).repository
    preferences = sorted(
        repository, key=lambda p: (p.clause.attribute, str(p.clause.value), p.score)
    )
    preference = preferences[len(preferences) // 2]
    if action == "update":
        bumped = round(0.05 + (preference.score * 100 + 13) % 90 / 100, 2)
        return [
            lambda service: service.update_preference(user_id, preference, bumped)
        ]
    if action == "remove_add":
        return [
            lambda service: service.delete_preference(user_id, preference),
            lambda service: service.add_preference(user_id, preference),
        ]
    # import: round-trip the profile through the JSON codec.
    payload = reference.export_profile(user_id)
    return [lambda service: service.import_profile(user_id, payload)]


def run_paging_bench(
    num_users: int = 1_000_000,
    hydrated_budget: int = 256,
    num_queries: int = 2_000,
    zipf_a: float = 1.1,
    num_rows: int = 200,
    backend: str = "jsonl",
    seed: int = 31,
    root: str | Path | None = None,
    register_batch: int = 20_000,
    measure_recovery: bool = True,
    edit_every: int = 10,
) -> dict[str, object]:
    """Bulk-register ``num_users`` cold, serve a zipf workload under an
    LRU hydration budget, then snapshot and time a cold recovery.

    Every ``edit_every``-th request also updates a preference of the
    queried user, so the working set contains *modified* profiles whose
    overrides must survive eviction and rehydration (and land in the
    WAL/snapshot). The acceptance numbers are ``paging.peak_hydrated``
    (must stay within ``hydrated_budget``) and ``recovery.complete``
    (every registered user present after recovery).
    """
    import tempfile

    cleanup = None
    if root is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-paging-")
        root = cleanup.name
    root = Path(root)
    try:
        return _run_paging_bench(
            num_users,
            hydrated_budget,
            num_queries,
            zipf_a,
            num_rows,
            backend,
            seed,
            root,
            register_batch,
            measure_recovery,
            edit_every,
        )
    finally:
        if cleanup is not None:
            cleanup.cleanup()


def _run_paging_bench(
    num_users: int,
    hydrated_budget: int,
    num_queries: int,
    zipf_a: float,
    num_rows: int,
    backend: str,
    seed: int,
    root: Path,
    register_batch: int,
    measure_recovery: bool,
    edit_every: int,
) -> dict[str, object]:
    environment = study_environment()
    relation = generate_poi_relation(num_rows, seed=seed)
    personas = all_personas()
    store = _open_store(backend, root)
    service = PersonalizationService(
        environment,
        relation,
        cache_capacity=8,
        store=store,
        hydrated_budget=hydrated_budget,
    )

    start = time.perf_counter()
    registered = service.register_many(
        (
            (f"u{index:07d}", personas[index % len(personas)])
            for index in range(num_users)
        ),
        batch_size=register_batch,
    )
    registration_seconds = time.perf_counter() - start

    pool = [
        ContextualQuery.at_state(state, top_k=5)
        for state in _pool_states(environment)
    ]
    sampler = ZipfSampler(num_users, zipf_a, np.random.default_rng(seed))
    ranks = sampler.sample_many(num_queries)
    # A random per-user offset decorrelates zipf rank from registration
    # order, so the hot set is spread across the id space.
    shuffle = random.Random(f"paging:{seed}")
    offset = shuffle.randrange(num_users)

    peak_hydrated = 0
    edits = 0
    start = time.perf_counter()
    for index, rank in enumerate(ranks):
        user_id = f"u{(int(rank) + offset) % num_users:07d}"
        service.query(user_id, pool[index % len(pool)])
        if edit_every and index % edit_every == 0:
            repository = service.account(user_id).repository
            preference = next(iter(repository))
            service.update_preference(
                user_id,
                preference,
                round(0.05 + (preference.score * 100 + 17) % 90 / 100, 2),
            )
            edits += 1
        stats = service.paging_statistics()
        peak_hydrated = max(peak_hydrated, int(stats["hydrated"]))
    query_seconds = time.perf_counter() - start
    paging = service.paging_statistics()

    start = time.perf_counter()
    covered = service.snapshot(compact=True)
    snapshot_seconds = time.perf_counter() - start

    report: dict[str, object] = {
        "workload": {
            "num_users": num_users,
            "hydrated_budget": hydrated_budget,
            "num_queries": num_queries,
            "zipf_a": zipf_a,
            "num_rows": num_rows,
            "backend": backend,
            "seed": seed,
        },
        "registration": {
            "users": registered,
            "seconds": registration_seconds,
            "users_per_second": (
                registered / registration_seconds if registration_seconds else 0.0
            ),
        },
        "queries": {
            "count": num_queries,
            "seconds": query_seconds,
            "qps": num_queries / query_seconds if query_seconds else 0.0,
            "unique_users_touched": int(paging["hydrations"]),
            "edits": edits,
        },
        "paging": {
            "peak_hydrated": peak_hydrated,
            "hydrated_budget": hydrated_budget,
            "within_budget": peak_hydrated <= hydrated_budget,
            "hydrations": paging["hydrations"],
            "evictions": paging["evictions"],
            "final_hydrated": paging["hydrated"],
            "overrides": paging["overrides"],
        },
        "snapshot": {"seconds": snapshot_seconds, "covered_lsn": covered},
    }

    if measure_recovery:
        service.close()
        service = None
        store = _open_store(backend, root)
        start = time.perf_counter()
        recovered = PersonalizationService(
            environment,
            relation,
            cache_capacity=8,
            store=store,
            hydrated_budget=hydrated_budget,
        )
        recovery_seconds = time.perf_counter() - start
        state = recovered.last_recovery
        report["recovery"] = {
            "seconds": recovery_seconds,
            "users": state.users,
            "overrides": len(state.overrides),
            "replayed": state.replayed,
            "snapshot_lsn": state.snapshot_lsn,
            "torn_tail": state.torn_tail,
            "complete": state.users == num_users,
        }
        recovered.close()
    else:
        service.close()
    return report
