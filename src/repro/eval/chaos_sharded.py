"""Distributed chaos driver: seeded network faults vs. the hardened router.

The single-process chaos harness (:mod:`repro.eval.chaos`) asks whether
the *service* survives injected faults; this one asks whether the
*sharded tier* does when the failures live on the wire. A seeded
schedule of rounds mixes the transport fault sites of
:mod:`repro.faults` (``conn.send``, ``conn.recv``, ``conn.connect``,
``net.partition``) with real worker kills and planned drains, and after
every round three audits must hold:

* **Exactly-once.** Every request gets exactly one reply - no rid is
  answered twice, none is lost - even though frames were duplicated,
  dropped and retried; the workers' rid-dedup LRU plus the router's
  rid-echo discipline carry the proof.
* **Byte-identical rankings.** Every ``ok`` reply's ranking equals a
  never-faulted single-process twin that received the same edits, so
  chaos changes *when and where* a query ran, never *what* it returned.
* **Durability through partitions.** Edits applied while the owner was
  unreachable land in the WAL (``applied_via: "wal"``) and are visible
  once the link heals.

The same schedule then replays against a hardening-disabled router
(``hardened=False``: every wire failure is treated as a crash, retries
raise) to show the availability gap the hardening buys.

Round schedule (all fault draws seeded, so runs are reproducible):

1. ``warmup`` - no faults; establishes the clean path.
2. ``wire_chaos`` - corrupted + duplicated sends, one dropped reply.
3. ``truncate_reset`` - mid-frame EOF on send, connection reset on
   receive.
4. ``partition_heal`` - the link blackholes (``net.partition``) while
   reconnects are refused (``conn.connect``); edits routed during the
   window must fall back to the WAL, queries hedge or wait for the
   heal.
5. ``kill_wire`` - a real worker kill in the middle of wire faults
   (the crash-vs-partition classifier has to get both right at once).
6. ``drain`` - ``drain_worker`` mid-batch: planned hand-off under
   load, no faults, no lost or duplicated replies allowed.

CLI front-end: ``python -m repro chaos --sharded``; regression
benchmark: ``benchmarks/bench_chaos_sharded.py`` writing
``BENCH_chaos_sharded.json``.
"""

from __future__ import annotations

import random
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.context.state import ContextState
from repro.db.poi import generate_poi_relation
from repro.eval.sharding import _population, _state_pool
from repro.exceptions import ShardError
from repro.faults.registry import FaultSpec, fault_plan
from repro.io.serialize import preference_to_dict
from repro.service.personalization import PersonalizationService
from repro.sharding.router import ShardRouter
from repro.sharding.worker import ranking_pairs
from repro.workloads.users import study_environment

__all__ = ["chaos_sharded_schedule", "run_chaos_sharded"]

_TOP_K = 10


@dataclass
class _Round:
    """One scheduled chaos round: a name, its faults, optional drain."""

    name: str
    faults: list[FaultSpec] = field(default_factory=list)
    drain: bool = False


def chaos_sharded_schedule() -> list[_Round]:
    """The fixed round schedule (fault *draws* are seeded separately)."""
    return [
        _Round("warmup"),
        _Round(
            "wire_chaos",
            faults=[
                FaultSpec(site="conn.send", kind="corrupt", max_fires=2),
                FaultSpec(site="conn.send", kind="duplicate", max_fires=2),
                FaultSpec(site="conn.recv", kind="drop", max_fires=1),
            ],
        ),
        _Round(
            "truncate_reset",
            faults=[
                FaultSpec(site="conn.send", kind="truncate", max_fires=1),
                FaultSpec(site="conn.recv", kind="reset", max_fires=1),
            ],
        ),
        _Round(
            "partition_heal",
            faults=[
                FaultSpec(site="net.partition", kind="reset", max_fires=6),
                FaultSpec(site="conn.connect", kind="reset", max_fires=4),
            ],
        ),
        _Round(
            "kill_wire",
            faults=[
                FaultSpec(site="worker.kill", kind="error", max_fires=1),
                FaultSpec(site="conn.send", kind="corrupt", max_fires=1),
            ],
        ),
        _Round("drain", drain=True),
    ]


def _build_twin(
    num_users: int, num_rows: int, cache_capacity: int | None, seed: int
) -> PersonalizationService:
    environment = study_environment()
    relation = generate_poi_relation(num_rows, seed=seed)
    twin = PersonalizationService(
        environment, relation, cache_capacity=cache_capacity
    )
    for user_id, persona in _population(num_users):
        twin.register(user_id, persona)
    return twin


def _round_requests(
    rng: random.Random, pool, num_users: int, count: int
) -> list[tuple[str, ContextState, int]]:
    return [
        (f"user{rng.randrange(num_users)}", rng.choice(pool), _TOP_K)
        for _ in range(count)
    ]


def _round_edits(
    twin: PersonalizationService,
    rng: random.Random,
    num_users: int,
    count: int,
) -> list[dict]:
    """Build ``count`` score-update records and apply them to the twin.

    The twin is mutated here, *before* the router sees the records, so
    the reference rankings computed afterwards already include every
    edit of the round - the router must converge to the same state no
    matter which path (direct, WAL fallback, resync) applied them.
    """
    records: list[dict] = []
    for _ in range(count):
        user_id = f"user{rng.randrange(num_users)}"
        preferences = sorted(
            twin.account(user_id).repository, key=repr
        )
        preference = preferences[rng.randrange(len(preferences))]
        score = round(rng.random(), 4)
        twin.update_preference(user_id, preference, score)
        records.append(
            {
                "op": "update",
                "user": user_id,
                "preference": preference_to_dict(preference),
                "score": score,
            }
        )
    return records


def _repair_ring(router: ShardRouter, num_workers: int) -> list[str]:
    """Respawn every worker missing from the ring (between rounds)."""
    respawned = []
    for index in range(num_workers):
        name = f"w{index}"
        if name not in router.workers:
            router.respawn_worker(name)
            respawned.append(name)
    return respawned


def _router_counters(router: ShardRouter) -> dict[str, int]:
    return {
        "worker_deaths": router.worker_deaths,
        "rebalances": router.rebalances,
        "retried_requests": router.retried_requests,
        "hedged_requests": router.hedged_requests,
        "conn_failures": router.conn_failures,
        "reconnects": router.reconnects,
        "drains": router.drains,
    }


def _run_mode(
    hardened: bool,
    num_users: int,
    num_rows: int,
    num_workers: int,
    queries_per_round: int,
    edits_per_round: int,
    cache_capacity: int | None,
    seed: int,
    wal_root: str | Path | None,
) -> dict[str, object]:
    """Play the full schedule through one router configuration.

    Both modes see byte-identical schedules: the same seeded requests,
    the same edit records (derived from each mode's own twin, which
    evolves identically), the same fault plans with the same seeds.
    """
    environment = study_environment()
    pool = _state_pool(environment)
    twin = _build_twin(num_users, num_rows, cache_capacity, seed)
    rounds_report: list[dict[str, object]] = []
    total_requests = total_ok = 0
    total_lost = total_double = total_dedup = 0
    identical = True
    applied_via: dict[str, int] = {}

    with tempfile.TemporaryDirectory(dir=wal_root) as shard_wal:
        router = ShardRouter(
            num_workers,
            wal_root=shard_wal,
            num_rows=num_rows,
            data_seed=seed,
            cache_capacity=cache_capacity,
            worker_threads=1,
            max_retries=8 if hardened else 1,
            hardened=hardened,
            reconnect_attempts=2,
            reconnect_backoff=0.01,
            retry_backoff=0.01,
        )
        try:
            router.start()
            router.register_many(_population(num_users))
            before = _router_counters(router)
            for number, round_spec in enumerate(chaos_sharded_schedule()):
                rng = random.Random(f"{seed}:{number}:{round_spec.name}")
                requests = _round_requests(
                    rng, pool, num_users, queries_per_round
                )
                edits = _round_edits(twin, rng, num_users, edits_per_round)
                reference = [
                    ranking_pairs(twin.query_at(user_id, state, top_k=top_k))
                    for user_id, state, top_k in requests
                ]
                row = _play_round(
                    router, round_spec, requests, edits, reference, seed
                )
                for via, count in row.pop("applied_via").items():
                    applied_via[via] = applied_via.get(via, 0) + count
                after = _router_counters(router)
                row["router"] = {
                    key: after[key] - before[key] for key in after
                }
                before = after
                row["respawned"] = _repair_ring(router, num_workers)
                rounds_report.append(row)
                total_requests += row["requests"] + row["edits"]
                total_ok += row["ok_replies"] + row["ok_edits"]
                total_lost += row["lost_replies"]
                total_double += row["double_served"]
                total_dedup += row["dedup_replies"]
                identical = identical and row["identical"]
            stats = router.stats()
        finally:
            router.close()
    twin.close()

    availability = total_ok / total_requests if total_requests else 1.0
    return {
        "hardened": hardened,
        "rounds": rounds_report,
        "requests": total_requests,
        "ok": total_ok,
        "availability": availability,
        "identical_output": identical,
        "lost_replies": total_lost,
        "duplicate_replies": total_double,
        "dedup_replies": total_dedup,
        "applied_via": applied_via,
        "router": {
            key: stats[key]
            for key in (
                "worker_deaths",
                "rebalances",
                "retried_requests",
                "hedged_requests",
                "conn_failures",
                "reconnects",
                "drains",
            )
        },
    }


def _play_round(
    router: ShardRouter,
    round_spec: _Round,
    requests: list[tuple[str, ContextState, int]],
    edits: list[dict],
    reference: list[list],
    seed: int,
) -> dict[str, object]:
    """Run one round under its fault plan and audit the replies."""
    ok_edits = failed_edits = 0
    applied_via: dict[str, int] = {}
    replies: list[dict] = []
    aborted = None
    started = time.perf_counter()
    with fault_plan(round_spec.faults, seed=seed):
        try:
            for record in edits:
                reply = router.apply_edit(record)
                if reply.get("ok"):
                    ok_edits += 1
                    via = reply.get("applied_via", "direct")
                    applied_via[via] = applied_via.get(via, 0) + 1
                else:
                    failed_edits += 1
            if round_spec.drain:
                half = len(requests) // 2
                replies = list(router.query_many(requests[:half]))
                drained = router.workers[0]
                router.drain_worker(drained)
                replies += router.query_many(requests[half:])
            else:
                replies = list(router.query_many(requests))
        except ShardError as error:
            # The un-hardened baseline raises out of the batch when its
            # retries are exhausted (or the whole ring died); every
            # request without a reply counts against availability.
            aborted = str(error)
    elapsed = time.perf_counter() - started

    rids = [reply.get("rid") for reply in replies]
    ok_replies = sum(1 for reply in replies if reply.get("ok"))
    answered: dict[object, int] = {}
    for rid in rids:
        answered[rid] = answered.get(rid, 0) + 1
    double_served = sum(count - 1 for count in answered.values())
    identical = len(replies) == len(requests) and all(
        reply.get("ok") and reply.get("ranking") == expected
        for reply, expected in zip(replies, reference)
    )
    return {
        "name": round_spec.name,
        "faults": [
            {"site": spec.site, "kind": spec.kind, "fires": spec.fires}
            for spec in round_spec.faults
        ],
        "seconds": elapsed,
        "requests": len(requests),
        "edits": len(edits),
        "ok_replies": ok_replies,
        "ok_edits": ok_edits,
        "failed_edits": failed_edits,
        "lost_replies": len(requests) - len(replies),
        "double_served": double_served,
        "dedup_replies": sum(
            1 for reply in replies if reply.get("duplicate")
        ),
        "identical": identical,
        "applied_via": applied_via,
        "aborted": aborted,
    }


def run_chaos_sharded(
    num_users: int = 8,
    num_rows: int = 300,
    num_workers: int = 2,
    queries_per_round: int = 24,
    edits_per_round: int = 4,
    cache_capacity: int | None = 64,
    seed: int = 11,
    with_baseline: bool = True,
    wal_root: str | Path | None = None,
) -> dict[str, object]:
    """Play the chaos schedule hardened, then (optionally) un-hardened.

    Returns a JSON-ready report: per-round audits for both modes, the
    availability of each, and the delta the hardening buys on the
    identical seeded schedule. The hardened run is expected to hold
    ``availability >= 0.99``, ``identical_output`` and zero
    lost/double-served replies; the baseline is expected to visibly
    degrade (that contrast is what ``BENCH_chaos_sharded.json``
    records).
    """
    hardened = _run_mode(
        True,
        num_users,
        num_rows,
        num_workers,
        queries_per_round,
        edits_per_round,
        cache_capacity,
        seed,
        wal_root,
    )
    baseline: dict[str, object] | None = None
    if with_baseline:
        baseline = _run_mode(
            False,
            num_users,
            num_rows,
            num_workers,
            queries_per_round,
            edits_per_round,
            cache_capacity,
            seed,
            wal_root,
        )
    return {
        "workload": {
            "num_users": num_users,
            "num_rows": num_rows,
            "num_workers": num_workers,
            "rounds": [
                round_spec.name for round_spec in chaos_sharded_schedule()
            ],
            "queries_per_round": queries_per_round,
            "edits_per_round": edits_per_round,
            "cache_capacity": cache_capacity,
            "seed": seed,
            "top_k": _TOP_K,
        },
        "hardened": hardened,
        "baseline": baseline,
        "availability_delta": (
            None
            if baseline is None
            else hardened["availability"] - baseline["availability"]
        ),
    }
