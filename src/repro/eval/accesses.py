"""Cell-access experiments for context resolution (Sec. 5.2, Fig. 7).

Measures how many cells the profile tree touches to find the
preferences relevant to a query, against the sequential-scan baseline,
for exact-match and covering (non-exact) resolution, over the real and
synthetic profiles. Trees always use the size-optimal ordering (larger
domains lower), as in the paper.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.context.state import ContextState
from repro.preferences.profile import Profile
from repro.resolution.search import search_cs
from repro.resolution.sequential import SequentialStore
from repro.tree.counters import AccessCounter
from repro.tree.ordering import optimal_ordering
from repro.tree.profile_tree import ProfileTree
from repro.workloads.queries import exact_match_states, random_states
from repro.workloads.real_profile import generate_real_profile
from repro.workloads.synthetic import ProfileSpec, generate_profile, synthetic_environment

__all__ = [
    "AccessMeasurement",
    "measure_accesses",
    "fig7_real_profile",
    "fig7_synthetic",
]


@dataclass(frozen=True)
class AccessMeasurement:
    """Average cell accesses of one method over one query workload."""

    label: str
    mean_cells: float
    total_cells: int
    num_queries: int


def _run(label: str, states: Sequence[ContextState], operation) -> AccessMeasurement:
    counter = AccessCounter()
    for state in states:
        operation(state, counter)
    total = counter.cells
    return AccessMeasurement(
        label=label,
        mean_cells=total / len(states) if states else 0.0,
        total_cells=total,
        num_queries=len(states),
    )


def measure_accesses(
    profile: Profile,
    exact_states: Sequence[ContextState],
    cover_states: Sequence[ContextState],
    ordering: Sequence[str] | None = None,
) -> dict[str, AccessMeasurement]:
    """Cell accesses of tree vs. sequential scan, exact vs. covering.

    Returns measurements keyed ``tree_exact``, ``serial_exact``,
    ``tree_cover``, ``serial_cover``.
    """
    ordering = ordering or optimal_ordering(profile.environment)
    tree = ProfileTree.from_profile(profile, ordering)
    store = SequentialStore.from_profile(profile)
    return {
        "tree_exact": _run(
            "tree_exact",
            exact_states,
            lambda state, counter: tree.exact_lookup(state, counter),
        ),
        "serial_exact": _run(
            "serial_exact",
            exact_states,
            lambda state, counter: store.exact_scan(state, counter),
        ),
        "tree_cover": _run(
            "tree_cover",
            cover_states,
            lambda state, counter: search_cs(tree, state, counter),
        ),
        "serial_cover": _run(
            "serial_cover",
            cover_states,
            lambda state, counter: store.cover_scan(state, counter),
        ),
    }


def fig7_real_profile(
    num_queries: int = 50, seed: int = 42
) -> dict[str, AccessMeasurement]:
    """Fig. 7 (left): accesses over the real profile, 50 queries.

    Exact-match queries are drawn from the profile's own states;
    non-exact queries are fresh states with mixed-level values.
    """
    environment, profile = generate_real_profile(seed=seed)
    exact_states = exact_match_states(profile, num_queries, seed=seed + 1)
    cover_states = random_states(environment, num_queries, seed=seed + 2)
    return measure_accesses(profile, exact_states, cover_states)


def fig7_synthetic(
    distribution: str = "uniform",
    profile_sizes: Sequence[int] = (500, 1000, 5000, 10000),
    num_queries: int = 50,
    zipf_a: float = 1.5,
    seed: int = 17,
) -> dict[str, list[float]]:
    """Fig. 7 (center/right): mean accesses vs. profile size.

    The synthetic profiles draw context values from every hierarchy
    level (the complexity analysis of Sec. 4.4 is over the extended
    domains), so covering resolution has real work to do. Queries are
    profile states for the exact series and fresh detailed states for
    the covering series.

    Returns ``{series: [mean cells per profile size]}`` with series
    ``tree_exact``, ``serial_exact``, ``tree_cover``, ``serial_cover``.
    """
    if distribution not in ("uniform", "zipf"):
        raise ValueError(f"unknown distribution {distribution!r}")
    environment = synthetic_environment()
    series: dict[str, list[float]] = {
        "tree_exact": [],
        "serial_exact": [],
        "tree_cover": [],
        "serial_cover": [],
    }
    for size in profile_sizes:
        spec = ProfileSpec(
            num_preferences=size,
            zipf_a=zipf_a if distribution == "zipf" else 0.0,
            level_weights=(0.7, 0.2, 0.1),
            seed=seed,
        )
        profile = generate_profile(environment, spec)
        exact_states = exact_match_states(profile, num_queries, seed=seed + 1)
        cover_states = random_states(
            environment, num_queries, seed=seed + 2, level_weights=(1.0,)
        )
        measurements = measure_accesses(profile, exact_states, cover_states)
        for key in series:
            series[key].append(measurements[key].mean_cells)
    return series
