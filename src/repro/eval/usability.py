"""The usability study (Sec. 5.1, Table 1), with simulated users.

Protocol, mirroring the paper:

1. Each of the 10 users is assigned one of the 12 default profiles and
   customises it (:mod:`repro.workloads.users`); we record the number
   of modifications and the editing time.
2. For each user we classify the detailed context states of the study
   environment by how the user's profile tree resolves them: *exact
   match*, *exactly one cover*, or *more than one (incomparable)
   cover*.
3. For sampled query states of each class, the system's top-20 ranking
   (ties included) is compared against the user's own top-20, built
   from their intrinsic preferences resolved with the most-specific
   (Jaccard) semantics. We report the percentage of system results the
   user agrees with, per class - and for the multi-cover class under
   both the Hierarchy and the Jaccard distances.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.context.state import ContextState
from repro.db.poi import generate_poi_relation
from repro.db.relation import Relation
from repro.query.contextual_query import ContextualQuery
from repro.query.executor import ContextualQueryExecutor
from repro.resolution.resolver import minimal_covering
from repro.resolution.search import search_cs
from repro.tree.profile_tree import ProfileTree
from repro.workloads.users import (
    Persona,
    SimulatedUser,
    all_personas,
    study_environment,
)

__all__ = ["UserStudyRow", "UsabilityStudy", "classify_states", "run_usability_study"]


@dataclass(frozen=True)
class UserStudyRow:
    """One column of the paper's Table 1 (one user)."""

    user_id: int
    num_updates: int
    update_time_minutes: int
    exact_match_pct: float
    one_cover_pct: float
    multi_cover_hierarchy_pct: float
    multi_cover_jaccard_pct: float


@dataclass(frozen=True)
class UsabilityStudy:
    """All users' results plus study-level aggregates."""

    rows: tuple[UserStudyRow, ...]

    def mean(self, field: str) -> float:
        """Average of one numeric field across users."""
        values = [getattr(row, field) for row in self.rows]
        return sum(values) / len(values) if values else 0.0


def classify_states(
    tree: ProfileTree,
) -> dict[str, list[ContextState]]:
    """Partition every detailed context state by resolution outcome.

    Returns ``{"exact": [...], "one_cover": [...], "multi_cover": [...]}``;
    states covered by no stored state are omitted (the paper executes
    those as non-contextual queries and does not measure them).
    """
    environment = tree.environment
    buckets: dict[str, list[ContextState]] = {
        "exact": [],
        "one_cover": [],
        "multi_cover": [],
    }
    detailed_domains = [parameter.dom for parameter in environment]
    for values in itertools.product(*detailed_domains):
        state = ContextState(environment, values)
        candidates = search_cs(tree, state)
        if not candidates:
            continue
        if any(candidate.is_exact() for candidate in candidates):
            buckets["exact"].append(state)
            continue
        minimal = minimal_covering(candidates)
        if len(minimal) == 1:
            buckets["one_cover"].append(state)
        else:
            buckets["multi_cover"].append(state)
    return buckets


def _top_pids(
    executor: ContextualQueryExecutor, state: ContextState, top_k: int
) -> set[object]:
    result = executor.execute(ContextualQuery.at_state(state))
    return {item.row["pid"] for item in result.top(top_k)}


def _agreement_pct(system: set[object], user: set[object]) -> float:
    """Percentage of the system's results the user also returned."""
    if not system:
        return 0.0
    return 100.0 * len(system & user) / len(system)


def _round5(value: float) -> float:
    """Round to the nearest 5%, like the paper's reported figures."""
    return float(5 * round(value / 5))


def run_usability_study(
    num_users: int = 10,
    relation: Relation | None = None,
    top_k: int = 20,
    queries_per_mode: int = 6,
    seed: int = 11,
) -> UsabilityStudy:
    """Run the full simulated usability study (Table 1).

    Args:
        num_users: Number of simulated participants (10 in the paper).
        relation: POI relation; a default 80-row one is generated.
        top_k: Ranking depth (the paper compares the best 20, keeping
            ties).
        queries_per_mode: Query states sampled per resolution class.
        seed: Master seed; personas, meticulousness and idiosyncrasies
            all derive from it deterministically.
    """
    environment = study_environment()
    if relation is None:
        relation = generate_poi_relation(80, seed=seed)
    rng = np.random.default_rng(seed)
    personas = all_personas()

    rows = []
    for user_id in range(1, num_users + 1):
        persona: Persona = personas[int(rng.integers(len(personas)))]
        meticulousness = float(rng.uniform(0.1, 1.0))
        user = SimulatedUser(
            user_id, persona, environment, meticulousness=meticulousness, seed=seed
        )
        session = user.customize()

        served_tree = ProfileTree.from_profile(session.profile)
        intrinsic_tree = ProfileTree.from_profile(session.intrinsic_profile)
        truth = ContextualQueryExecutor(
            intrinsic_tree, relation, metric="jaccard"
        )
        system_hierarchy = ContextualQueryExecutor(
            served_tree, relation, metric="hierarchy"
        )
        system_jaccard = ContextualQueryExecutor(
            served_tree, relation, metric="jaccard"
        )

        buckets = classify_states(served_tree)
        per_mode: dict[str, list[float]] = {
            "exact": [],
            "one_cover": [],
            "multi_hierarchy": [],
            "multi_jaccard": [],
        }
        for mode in ("exact", "one_cover", "multi_cover"):
            states = buckets[mode]
            if not states:
                continue
            chosen = rng.choice(
                len(states), size=min(queries_per_mode, len(states)), replace=False
            )
            for index in chosen:
                state = states[int(index)]
                user_pids = _top_pids(truth, state, top_k)
                if mode == "multi_cover":
                    per_mode["multi_hierarchy"].append(
                        _agreement_pct(_top_pids(system_hierarchy, state, top_k), user_pids)
                    )
                    per_mode["multi_jaccard"].append(
                        _agreement_pct(_top_pids(system_jaccard, state, top_k), user_pids)
                    )
                else:
                    key = "exact" if mode == "exact" else "one_cover"
                    per_mode[key].append(
                        _agreement_pct(_top_pids(system_hierarchy, state, top_k), user_pids)
                    )

        def mode_pct(key: str) -> float:
            values = per_mode[key]
            return _round5(sum(values) / len(values)) if values else 0.0

        rows.append(
            UserStudyRow(
                user_id=user_id,
                num_updates=session.num_modifications,
                update_time_minutes=session.update_time_minutes,
                exact_match_pct=mode_pct("exact"),
                one_cover_pct=mode_pct("one_cover"),
                multi_cover_hierarchy_pct=mode_pct("multi_hierarchy"),
                multi_cover_jaccard_pct=mode_pct("multi_jaccard"),
            )
        )
    return UsabilityStudy(rows=tuple(rows))
