"""Multi-user personalization service (the paper's prototype system)."""

from repro.service.personalization import PersonalizationService, UserAccount

__all__ = ["PersonalizationService", "UserAccount"]
