"""A multi-user personalization service (the paper's prototype, Sec. 5.1).

The usability study describes the system around the algorithms: users
register and are assigned one of 12 **default profiles** "based on the
(a) age, (b) sex and (c) taste"; they then modify their profile by
adding, deleting or updating preferences; their contextual queries run
against their own profile tree, optionally through a per-user result
cache; and traceability lets them inspect why a result was returned.

:class:`PersonalizationService` packages exactly that surface on top of
the library: registration with demographic default-profile assignment,
profile editing (delegating to :class:`PreferenceRepository`), query
execution, and per-user cache management.

**Concurrency model.** The service serves interleaved requests from
many threads. Mutating operations on one user (``register``,
``unregister``, ``add/delete/update_preference``, ``import_profile``)
take that user's **write lock** from a striped per-user lock table, so
edits to a profile are serialised; ``query``/``rank_many`` take the
user's **read lock**, so any number of queries for the same user run
together but never interleave with that user's edits (read-your-writes
per user). The accounts dict itself is guarded by a separate registry
lock, under which ``statistics`` and the population gauges take
consistent snapshots. The lock order is: per-user lock, then registry
lock, then the per-account stats lock, then the relation's lock, then
cache locks (see :mod:`repro.concurrency`). Bulk concurrent execution is available via
:meth:`PersonalizationService.query_many`, which fans a request batch
out over a bounded thread pool.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.exceptions import (
    QueryError,
    ReproError,
    RequestTimeout,
    ServiceUnavailable,
)
from repro.concurrency.executor import ConcurrentQueryExecutor, RequestOutcome
from repro.concurrency.locks import (
    LEVEL_ACCOUNT,
    LEVEL_REGISTRY,
    LEVEL_USER,
    Mutex,
    StripedLockTable,
)
from repro.context.descriptor import ContextDescriptor, ExtendedContextDescriptor
from repro.context.environment import ContextEnvironment
from repro.context.state import ContextState
from repro.db.relation import Relation
from repro.faults.registry import get_fault_registry
from repro.obs.metrics import get_registry
from repro.obs.trace import span
from repro.preferences.preference import ContextualPreference
from repro.preferences.repository import PreferenceRepository
from repro.query.contextual_query import ContextualQuery
from repro.query.executor import ContextualQueryExecutor, QueryResult
from repro.query.rank import BatchStats
from repro.query.resilient import ResilientQueryExecutor
from repro.resilience import (
    Deadline,
    ResiliencePolicies,
    current_deadline,
    deadline_scope,
)
from repro.tree.query_tree import ContextQueryTree
from repro.workloads.users import Persona, default_profile

__all__ = ["UserAccount", "PersonalizationService"]


def _account_stats_lock() -> Mutex:
    """One account's stats/lazy-build lock (level 25, below registry)."""
    return Mutex(level=LEVEL_ACCOUNT, name="account.stats")


@dataclass
class UserAccount:
    """One registered user: persona, repository and statistics.

    ``_stats_lock`` guards the usage counters and the lazy executor
    build: counters are incremented from concurrent query threads
    (which hold only the user's *read* lock, so they may race each
    other), and two racing readers must not both wire a cache watch.
    """

    user_id: str
    persona: Persona
    repository: PreferenceRepository
    cache: ContextQueryTree | None = None
    modifications: int = 0
    queries_executed: int = 0
    _executor: ContextualQueryExecutor | None = field(default=None, repr=False)
    _stats_lock: Mutex = field(
        default_factory=_account_stats_lock, repr=False, compare=False
    )

    def _count_queries(self, amount: int = 1) -> None:
        with self._stats_lock:
            self.queries_executed += amount


class PersonalizationService:
    """Registration, profile editing and contextual querying per user.

    Args:
        environment: The application's context environment. Must be the
            study environment (or a superset-compatible one) because
            default profiles are expressed over it.
        relation: The relation queries run against.
        metric: Resolution metric used for every user.
        cache_capacity: Per-user result-cache size; ``None`` disables
            caching, ``0`` is invalid.
        auto_index: Turn on on-demand attribute indexing for the
            relation, so every user's selections take the indexed path
            (the service is the multi-user hot path; default on).
        lock_stripes: Stripe count of the per-user lock table (rounded
            up to a power of two). More stripes = less false sharing
            between users under heavy concurrency.
        resilience: Optional :class:`~repro.resilience.ResiliencePolicies`
            bundle. When given, :meth:`query` serves through the
            degradation ladder (retries, circuit breakers, graceful
            fallbacks; see :mod:`repro.resilience`) and stamps the
            served level on :attr:`QueryResult.degradation`. When
            omitted the service runs the exact pre-existing path - the
            resilience layer costs nothing unless opted into.

    Example:
        >>> service = PersonalizationService(study_environment(), relation)
        >>> service.register("alice", Persona("below30", "female", "offbeat"))
        >>> service.query("alice", ContextualQuery.at_state(state))
    """

    def __init__(
        self,
        environment: ContextEnvironment,
        relation: Relation,
        metric: str = "jaccard",
        cache_capacity: int | None = 128,
        auto_index: bool = True,
        lock_stripes: int = 64,
        resilience: ResiliencePolicies | None = None,
    ) -> None:
        self._environment = environment
        self._relation = relation
        if auto_index:
            relation.auto_index = True
        self._metric = metric
        self._cache_capacity = cache_capacity
        self._resilience = resilience
        self._accounts: dict[str, UserAccount] = {}
        # Per-user RW locks (striped) + one registry lock for the
        # accounts dict and population gauges. Lock order: user lock
        # before registry lock; never the reverse.
        self._user_locks = StripedLockTable(
            lock_stripes, level=LEVEL_USER, name="service.user"
        )
        self._registry_lock = Mutex(level=LEVEL_REGISTRY, name="service.registry")

    @property
    def environment(self) -> ContextEnvironment:
        """The application's context environment."""
        return self._environment

    @property
    def relation(self) -> Relation:
        """The queried relation."""
        return self._relation

    @property
    def resilience(self) -> ResiliencePolicies | None:
        """The resilience policies in force, if any."""
        return self._resilience

    def __len__(self) -> int:
        return len(self._accounts)

    def __contains__(self, user_id: object) -> bool:
        return user_id in self._accounts

    def __iter__(self) -> Iterator[UserAccount]:
        with self._registry_lock:
            return iter(list(self._accounts.values()))

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, user_id: str, persona: Persona) -> UserAccount:
        """Register a user; they receive their persona's default profile.

        Raises:
            ReproError: On empty/duplicate user ids.
        """
        if not user_id:
            raise ReproError("user id must be non-empty")
        with self._user_locks.write_locked(user_id):
            with self._registry_lock:
                if user_id in self._accounts:
                    raise ReproError(f"user {user_id!r} is already registered")
            # Build the profile outside the registry lock (it is the
            # expensive part); the duplicate check is re-validated by
            # the dict insert below, which the user write lock already
            # serialises against concurrent registers of the same id.
            profile = default_profile(persona, self._environment)
            repository = PreferenceRepository(self._environment, profile)
            cache = (
                ContextQueryTree(self._environment, capacity=self._cache_capacity)
                if self._cache_capacity is not None
                else None
            )
            account = UserAccount(
                user_id=user_id, persona=persona, repository=repository, cache=cache
            )
            with self._registry_lock:
                self._accounts[user_id] = account
                self._record_population()
            return account

    def unregister(self, user_id: str) -> None:
        """Drop a user and their profile.

        The user's result cache (if any) is detached from the relation:
        building the executor wired the cache's mutation listener onto
        the shared relation (``cache.watch``), and without the unwatch
        every register/unregister cycle would leave a dead callback
        firing on each insert.

        Raises:
            ReproError: If the user is unknown.
        """
        with self._user_locks.write_locked(user_id):
            account = self.account(user_id)
            self._retire_cache(account)
            with self._registry_lock:
                del self._accounts[user_id]
                self._record_population()

    def _retire_cache(self, account: UserAccount) -> None:
        """Detach ``account``'s cache from the relation and drop the
        executor that wired it."""
        if account.cache is not None:
            account.cache.unwatch(self._relation)
        account._executor = None

    def _record_population(self) -> None:
        registry = get_registry()
        if registry.enabled:
            with self._registry_lock:
                registry.set_gauge("service.registered_users", len(self._accounts))
                registry.set_gauge(
                    "service.relation_listeners",
                    self._relation.mutation_listener_count,
                )

    def account(self, user_id: str) -> UserAccount:
        """Look up a registered user's account."""
        try:
            return self._accounts[user_id]
        except KeyError:
            raise ReproError(f"unknown user {user_id!r}") from None

    # ------------------------------------------------------------------
    # Profile editing (the study's "modifications")
    # ------------------------------------------------------------------
    @staticmethod
    def _fire_edit_faults() -> None:
        # The ``service.edit`` injection site fires *before* any
        # mutation: an injected edit failure must leave the repository,
        # the executor and the cache exactly as they were (fail-fast),
        # never a mutated repository with a stale cache.
        faults = get_fault_registry()
        if faults.enabled:
            faults.fire("service.edit")

    def add_preference(self, user_id: str, preference: ContextualPreference) -> None:
        """Insert one preference into the user's profile."""
        self._fire_edit_faults()
        with self._user_locks.write_locked(user_id):
            account = self.account(user_id)
            account.repository.add(preference)
            self._after_edit(account, preference)

    def delete_preference(self, user_id: str, preference: ContextualPreference) -> None:
        """Delete one preference from the user's profile."""
        self._fire_edit_faults()
        with self._user_locks.write_locked(user_id):
            account = self.account(user_id)
            account.repository.remove(preference)
            self._after_edit(account, preference)

    def update_preference(
        self, user_id: str, preference: ContextualPreference, new_score: float
    ) -> ContextualPreference:
        """Change a stored preference's score; returns the replacement."""
        self._fire_edit_faults()
        with self._user_locks.write_locked(user_id):
            account = self.account(user_id)
            replacement = account.repository.update_score(preference, new_score)
            self._after_edit(account, preference)
            return replacement

    def _after_edit(
        self,
        account: UserAccount,
        preference: ContextualPreference | None = None,
    ) -> None:
        account.modifications += 1
        account._executor = None  # the tree changed; rebuild lazily
        registry = get_registry()
        if registry.enabled:
            registry.inc("service.edits", labels={"user": account.user_id})
        if account.cache is None:
            return
        if preference is None:
            account.cache.clear()
            return
        # Precise invalidation: only queries resolved at states covered
        # by one of the edited preference's context states are stale.
        for state in preference.descriptor.states(self._environment):
            account.cache.invalidate_covered(state)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def _executor_for(self, account: UserAccount) -> ContextualQueryExecutor:
        # Query threads hold only the user's read lock, so two of them
        # may race the lazy build; the account lock makes it
        # build-once (the cache watch it wires is idempotent anyway,
        # but a single executor keeps resolver state shared).
        executor = account._executor
        if executor is None:
            with account._stats_lock:
                executor = account._executor
                if executor is None:
                    executor = ContextualQueryExecutor(
                        account.repository.tree,
                        self._relation,
                        metric=self._metric,
                        cache=account.cache,
                    )
                    account._executor = executor
            self._record_population()
        return executor

    def query(self, user_id: str, query: ContextualQuery) -> QueryResult:
        """Execute a contextual query as ``user_id``.

        With resilience policies configured, the query is served
        through the degradation ladder and the result's
        ``degradation`` attribute names the level that produced it.

        Raises:
            QueryError: If the query's environment differs.
            RequestTimeout: If the request's propagated deadline (see
                :meth:`query_many`) has already expired.
            ServiceUnavailable: Resilient mode only - every degradation
                level failed.
        """
        if query.environment.names != self._environment.names:
            raise QueryError("query environment does not match the service's")
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("service.query")
        with self._user_locks.read_locked(user_id):
            account = self.account(user_id)
            account._count_queries()
            registry = get_registry()
            if registry.enabled:
                registry.inc("service.queries", labels={"user": user_id})
            with span("service_query"):
                executor = self._executor_for(account)
                if self._resilience is not None:
                    return ResilientQueryExecutor(
                        executor, self._resilience, user_id=user_id
                    ).execute(query)
                return executor.execute(query)

    def query_at(
        self,
        user_id: str,
        state: ContextState,
        top_k: int | None = 20,
    ) -> QueryResult:
        """Convenience: query at an implicit current context state."""
        return self.query(user_id, ContextualQuery.at_state(state, top_k=top_k))

    #: Descriptors ranked between deadline checks in bounded rank_many.
    _RANK_CHUNK = 8

    def rank_many(
        self,
        user_id: str,
        descriptors: Sequence[ContextDescriptor | ExtendedContextDescriptor],
        timeout: float | None = None,
    ) -> tuple[list[QueryResult], BatchStats]:
        """Rank the relation for many context descriptors in one pass.

        The batched entry point for high-throughput serving: context
        resolution is memoized per distinct state and each distinct
        winning clause touches the relation once across the whole
        batch (see :func:`repro.query.rank.rank_cs_batch`). Returns
        one :class:`QueryResult` per descriptor plus the batch's memo
        statistics.

        ``timeout`` (or an already-propagated deadline) bounds the
        whole batch: descriptors are then ranked in chunks with a
        deadline check between chunks, so a slow batch raises
        :class:`~repro.exceptions.RequestTimeout` within one chunk of
        the budget instead of running to completion. Memoization is
        per chunk in that mode, so the ``unique_*`` statistics are
        summed over chunks.
        """
        with self._user_locks.read_locked(user_id):
            account = self.account(user_id)
            descriptors = list(descriptors)
            executor = self._executor_for(account)
            deadline = Deadline.after(timeout) if timeout is not None else None
            with deadline_scope(deadline) as effective:
                if effective is None:
                    results, stats = executor.rank_many(descriptors)
                else:
                    results, stats = self._rank_chunked(
                        executor, descriptors, effective
                    )
            account._count_queries(len(descriptors))
            registry = get_registry()
            if registry.enabled:
                registry.inc(
                    "service.queries", len(descriptors), labels={"user": user_id}
                )
            return results, stats

    def _rank_chunked(
        self,
        executor: ContextualQueryExecutor,
        descriptors: list[ContextDescriptor | ExtendedContextDescriptor],
        deadline: Deadline,
    ) -> tuple[list[QueryResult], BatchStats]:
        results: list[QueryResult] = []
        stats = BatchStats()
        for start in range(0, len(descriptors), self._RANK_CHUNK):
            deadline.check("service.rank_many")
            chunk = descriptors[start : start + self._RANK_CHUNK]
            chunk_results, chunk_stats = executor.rank_many(chunk)
            results.extend(chunk_results)
            stats.descriptors += chunk_stats.descriptors
            stats.state_lookups += chunk_stats.state_lookups
            stats.unique_states += chunk_stats.unique_states
            stats.clause_lookups += chunk_stats.clause_lookups
            stats.unique_clauses += chunk_stats.unique_clauses
        return results, stats

    def query_many(
        self,
        requests: Sequence[tuple[str, ContextualQuery]],
        max_workers: int = 4,
        queue_depth: int | None = None,
        timeout: float | None = None,
        executor: ConcurrentQueryExecutor | None = None,
        deadline: float | None = None,
        shed_on_saturation: bool = False,
    ) -> list[RequestOutcome]:
        """Execute ``(user_id, query)`` requests on a bounded thread pool.

        The concurrent counterpart of calling :meth:`query` in a loop:
        requests fan out over a
        :class:`~repro.concurrency.ConcurrentQueryExecutor` and the
        per-user read/write locking guarantees each query sees a
        consistent profile. Outcomes come back in request order; a
        request whose query raised carries the exception instead of
        failing the whole batch.

        Failed outcomes carry **typed** errors: a shed request's
        ``outcome.error`` is a
        :class:`~repro.exceptions.ServiceUnavailable` and a timed-out
        or cancelled request's a
        :class:`~repro.exceptions.RequestTimeout`, each with the failed
        user id and query state attached, counted in the
        ``service.shed`` / ``service.timeouts`` metrics.

        Args:
            requests: ``(user_id, query)`` pairs.
            max_workers / queue_depth / timeout: Pool parameters for a
                temporary executor (see
                :class:`~repro.concurrency.ConcurrentQueryExecutor`).
            executor: Run on this executor instead of a temporary one
                (it is left running; the caller owns its lifecycle).
            deadline: Whole-batch time budget in seconds, propagated
                *into* each request as a
                :class:`~repro.resilience.Deadline` scope - stages
                check it mid-request instead of only at collection.
            shed_on_saturation: Submit non-blocking; a request that
                finds the pool full is shed with a typed
                ``ServiceUnavailable`` instead of queueing.

        Returns:
            One :class:`~repro.concurrency.RequestOutcome` per request,
            in request order; ``outcome.result`` is the
            :class:`QueryResult` when ``outcome.ok``.
        """
        requests = list(requests)
        batch_deadline = Deadline.after(deadline) if deadline is not None else None

        def request_fn(user_id: str, query: ContextualQuery):
            def run():
                with deadline_scope(batch_deadline):
                    return self.query(user_id, query)

            return run

        callables = [request_fn(user_id, query) for user_id, query in requests]
        block = not shed_on_saturation
        if executor is not None:
            outcomes = executor.run(callables, timeout=timeout, block=block)
        else:
            with ConcurrentQueryExecutor(
                max_workers=max_workers, queue_depth=queue_depth, timeout=timeout
            ) as pool:
                outcomes = pool.run(callables, block=block)
        return self._typed_outcomes(outcomes, requests, timeout)

    @staticmethod
    def _typed_outcomes(
        outcomes: list[RequestOutcome],
        requests: list[tuple[str, ContextualQuery]],
        timeout: float | None,
    ) -> list[RequestOutcome]:
        """Attach typed, identified errors to shed/expired outcomes."""
        registry = get_registry()
        for outcome in outcomes:
            user_id, query = requests[outcome.index]
            state = query.current_state
            if outcome.status == "rejected":
                outcome.error = ServiceUnavailable(
                    "request shed: executor saturated",
                    user_id=user_id,
                    state=state,
                    causes=(outcome.error,) if outcome.error is not None else (),
                )
                if registry.enabled:
                    registry.inc("service.shed")
            elif outcome.status in ("timeout", "cancelled"):
                detail = (
                    f"request exceeded its {timeout}s collection timeout"
                    if outcome.status == "timeout"
                    else "request cancelled before running (batch out of time)"
                )
                outcome.error = RequestTimeout(
                    detail, user_id=user_id, state=state
                )
                if registry.enabled:
                    registry.inc("service.timeouts")
        return outcomes

    # ------------------------------------------------------------------
    # Persistence & statistics
    # ------------------------------------------------------------------
    def export_profile(self, user_id: str) -> str:
        """The user's profile as JSON (see :mod:`repro.io`)."""
        with self._user_locks.read_locked(user_id):
            return self.account(user_id).repository.to_json()

    def import_profile(self, user_id: str, text: str) -> None:
        """Replace the user's profile from :meth:`export_profile` output.

        The imported profile must be expressed over the service's own
        context environment; accepting a foreign one would corrupt
        later queries and cache keys (states and descriptors are
        positional over the environment's parameters). The user's
        result cache is replaced wholesale - the old one is first
        unwatched from the relation so its mutation listener does not
        outlive it.

        Raises:
            ReproError: If the payload's environment differs from the
                service's.
        """
        self._fire_edit_faults()
        repository = PreferenceRepository.from_json(text)
        if repository.environment.names != self._environment.names:
            raise ReproError(
                "imported profile's context environment "
                f"{list(repository.environment.names)!r} does not match the "
                f"service's {list(self._environment.names)!r}"
            )
        with self._user_locks.write_locked(user_id):
            account = self.account(user_id)
            account.repository = repository
            if account.cache is not None:
                account.cache.unwatch(self._relation)
                account.cache = ContextQueryTree(
                    self._environment, capacity=self._cache_capacity
                )
            self._after_edit(account)

    def statistics(self) -> list[dict[str, object]]:
        """Per-user usage statistics, sorted by user id.

        The account list is snapshotted under the registry lock, so a
        concurrent ``register``/``unregister`` cannot resize the dict
        mid-iteration; each row then reads one account's counters
        (monotonic ints - a row is at worst one event behind).
        """
        with self._registry_lock:
            accounts = sorted(self._accounts.values(), key=lambda a: a.user_id)
        return [
            {
                "user_id": account.user_id,
                "persona_key": account.persona.key,
                "preferences": len(account.repository),
                "modifications": account.modifications,
                "queries": account.queries_executed,
                "cache_hit_rate": (
                    account.cache.hit_rate() if account.cache is not None else None
                ),
                "cache_evictions": (
                    account.cache.evictions if account.cache is not None else None
                ),
                "cache_invalidations": (
                    account.cache.invalidations if account.cache is not None else None
                ),
            }
            for account in accounts
        ]
