"""A multi-user personalization service (the paper's prototype, Sec. 5.1).

The usability study describes the system around the algorithms: users
register and are assigned one of 12 **default profiles** "based on the
(a) age, (b) sex and (c) taste"; they then modify their profile by
adding, deleting or updating preferences; their contextual queries run
against their own profile tree, optionally through a per-user result
cache; and traceability lets them inspect why a result was returned.

:class:`PersonalizationService` packages exactly that surface on top of
the library: registration with demographic default-profile assignment,
profile editing (delegating to :class:`PreferenceRepository`), query
execution, and per-user cache management.

**Durability & paging.** With a :class:`~repro.storage.ProfileStore`
attached, every registration and profile edit is appended to the
store's write-ahead log before the call returns, and the service can
recover its full user population from snapshot + WAL after a crash
(see :mod:`repro.storage` and ``docs/persistence.md``). Registered
users then live in two tiers:

* **cold** - only the user's persona (and, once edited, a serialized
  profile) is in RAM; the profile tree, executor and result cache do
  not exist;
* **hydrated** - a live :class:`UserAccount` with its lazily rebuilt
  profile tree and cache, created transparently the first time a
  ``query``/``rank_many``/edit touches the user.

``hydrated_budget`` bounds the hydrated tier with LRU eviction, so a
service can hold millions of registered users while only the working
set pays for trees and caches. Eviction needs no write-back: the
serialized profile of every *modified* user is kept current at edit
time (under the registry lock), so a victim is simply unwatched and
dropped. Without a store and budget the service runs the exact
pre-existing in-memory path.

**Concurrency model.** The service serves interleaved requests from
many threads. Mutating operations on one user (``register``,
``unregister``, ``add/delete/update_preference``, ``import_profile``)
take that user's **write lock** from a striped per-user lock table, so
edits to a profile are serialised; ``query``/``rank_many`` take the
user's **read lock**, so any number of queries for the same user run
together but never interleave with that user's edits (read-your-writes
per user). The user directory, override map and hydrated-account LRU
are guarded by a separate registry lock, under which ``statistics``
and the population gauges take consistent snapshots. The lock order
is: per-user lock, then registry lock, then the per-account stats
lock, then the relation's lock, then cache locks, then the store's
lock (see :mod:`repro.concurrency`). Bulk concurrent execution is
available via :meth:`PersonalizationService.query_many`, which fans a
request batch out over a bounded thread pool.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import asdict, dataclass, field

from repro.exceptions import (
    QueryError,
    ReproError,
    RequestTimeout,
    ServiceUnavailable,
)
from repro.concurrency.executor import ConcurrentQueryExecutor, RequestOutcome
from repro.concurrency.locks import (
    LEVEL_ACCOUNT,
    LEVEL_REGISTRY,
    LEVEL_USER,
    Mutex,
    StripedLockTable,
)
from repro.context.descriptor import ContextDescriptor, ExtendedContextDescriptor
from repro.context.environment import ContextEnvironment
from repro.context.state import ContextState
from repro.db.relation import Relation
from repro.faults.registry import get_fault_registry
from repro.io.serialize import preference_to_dict, profile_from_dict, profile_to_dict
from repro.obs.metrics import get_registry
from repro.obs.trace import span
from repro.preferences.preference import ContextualPreference
from repro.preferences.repository import PreferenceRepository
from repro.query.contextual_query import ContextualQuery
from repro.query.executor import ContextualQueryExecutor, QueryResult
from repro.query.rank import BatchStats
from repro.query.resilient import ResilientQueryExecutor
from repro.resilience import (
    Deadline,
    ResiliencePolicies,
    current_deadline,
    deadline_scope,
)
from repro.storage.recovery import RecoveredState, recover_state
from repro.storage.store import ProfileStore
from repro.tree.query_tree import ContextQueryTree
from repro.workloads.users import Persona, default_profile

__all__ = ["UserAccount", "PersonalizationService"]


def _account_stats_lock() -> Mutex:
    """One account's stats/lazy-build lock (level 25, below registry)."""
    return Mutex(level=LEVEL_ACCOUNT, name="account.stats")


@dataclass
class UserAccount:
    """One hydrated user: persona, repository and statistics.

    ``_stats_lock`` guards the usage counters and the lazy executor
    build: counters are incremented from concurrent query threads
    (which hold only the user's *read* lock, so they may race each
    other), and two racing readers must not both wire a cache watch.
    """

    user_id: str
    persona: Persona
    repository: PreferenceRepository
    cache: ContextQueryTree | None = None
    modifications: int = 0
    queries_executed: int = 0
    _executor: ContextualQueryExecutor | None = field(default=None, repr=False)
    _stats_lock: Mutex = field(
        default_factory=_account_stats_lock, repr=False, compare=False
    )

    def _count_queries(self, amount: int = 1) -> None:
        with self._stats_lock:
            self.queries_executed += amount


class PersonalizationService:
    """Registration, profile editing and contextual querying per user.

    Args:
        environment: The application's context environment. Must be the
            study environment (or a superset-compatible one) because
            default profiles are expressed over it.
        relation: The relation queries run against.
        metric: Resolution metric used for every user.
        cache_capacity: Per-user result-cache size; ``None`` disables
            caching, ``0`` is invalid.
        auto_index: Turn on on-demand attribute indexing for the
            relation, so every user's selections take the indexed path
            (the service is the multi-user hot path; default on).
        lock_stripes: Stripe count of the per-user lock table (rounded
            up to a power of two). More stripes = less false sharing
            between users under heavy concurrency.
        resilience: Optional :class:`~repro.resilience.ResiliencePolicies`
            bundle. When given, :meth:`query` serves through the
            degradation ladder (retries, circuit breakers, graceful
            fallbacks; see :mod:`repro.resilience`) and stamps the
            served level on :attr:`QueryResult.degradation`. When
            omitted the service runs the exact pre-existing path - the
            resilience layer costs nothing unless opted into.
        store: Optional :class:`~repro.storage.ProfileStore`. When
            given, registrations and edits are WAL-appended before the
            call returns and :meth:`snapshot` persists the population;
            the service owns the store's lifecycle from here
            (:meth:`close` closes it).
        hydrated_budget: Maximum number of hydrated accounts kept in
            RAM (LRU-evicted beyond it); ``None`` = unbounded (every
            registered user stays hydrated once touched).
        snapshot_every: Take (and compact after) a snapshot
            automatically every this many WAL appends; ``None`` (the
            default) leaves snapshots to explicit :meth:`snapshot`
            calls.
        recover: With a store, replay snapshot + WAL on construction
            and adopt the recovered population (cold). ``False`` starts
            empty on an empty store (an existing log would then raise
            duplicate-registration errors as it is re-written).
        recover_from: Adopt an already-recovered population (cold)
            *without* attaching a store - the shard-worker path: a
            worker replays the shared WAL through a read-only store,
            closes it, and seeds its service from the resulting
            :class:`~repro.storage.recovery.RecoveredState`. Mutually
            exclusive with ``store``.

    Example:
        >>> service = PersonalizationService(study_environment(), relation)
        >>> service.register("alice", Persona("below30", "female", "offbeat"))
        >>> service.query("alice", ContextualQuery.at_state(state))
    """

    def __init__(
        self,
        environment: ContextEnvironment,
        relation: Relation,
        metric: str = "jaccard",
        cache_capacity: int | None = 128,
        auto_index: bool = True,
        lock_stripes: int = 64,
        resilience: ResiliencePolicies | None = None,
        store: ProfileStore | None = None,
        hydrated_budget: int | None = None,
        snapshot_every: int | None = None,
        recover: bool = True,
        recover_from: RecoveredState | None = None,
    ) -> None:
        self._environment = environment
        self._relation = relation
        if auto_index:
            relation.auto_index = True
        self._metric = metric
        self._cache_capacity = cache_capacity
        self._resilience = resilience
        if hydrated_budget is not None and hydrated_budget < 1:
            raise ReproError(
                f"hydrated_budget must be >= 1 or None, got {hydrated_budget}"
            )
        if snapshot_every is not None and snapshot_every < 1:
            raise ReproError(
                f"snapshot_every must be >= 1 or None, got {snapshot_every}"
            )
        if store is not None and recover_from is not None:
            raise ReproError(
                "store and recover_from are mutually exclusive: a service "
                "either owns its WAL or adopts state recovered elsewhere"
            )
        self._store = store
        self._hydrated_budget = hydrated_budget
        self._snapshot_every = snapshot_every
        # Paging bookkeeping is maintained whenever eviction or
        # durability can need it; the plain in-memory service skips it.
        self._paging = (
            store is not None
            or hydrated_budget is not None
            or recover_from is not None
        )
        #: All registered users (cold + hydrated): user id -> persona.
        self._directory: dict[str, Persona] = {}
        #: Serialized profiles of users whose profile differs from the
        #: persona default. Values are replaced, never mutated in
        #: place, so snapshot streams may share them safely.
        self._overrides: dict[str, dict] = {}
        #: Hydrated accounts only, in LRU order (oldest first).
        self._accounts: OrderedDict[str, UserAccount] = OrderedDict()
        self._hydrations = 0
        self._evictions = 0
        self._appends_since_snapshot = 0
        # Per-user RW locks (striped) + one registry lock for the
        # directory/override/account maps and population gauges. Lock
        # order: user lock before registry lock; never the reverse.
        self._user_locks = StripedLockTable(
            lock_stripes, level=LEVEL_USER, name="service.user"
        )
        self._registry_lock = Mutex(level=LEVEL_REGISTRY, name="service.registry")
        #: Accounting of the recovery that seeded this service, if any.
        self.last_recovery: RecoveredState | None = None
        if store is not None and recover:
            self._recover()
        elif recover_from is not None:
            self._adopt(recover_from)

    @property
    def environment(self) -> ContextEnvironment:
        """The application's context environment."""
        return self._environment

    @property
    def relation(self) -> Relation:
        """The queried relation."""
        return self._relation

    @property
    def resilience(self) -> ResiliencePolicies | None:
        """The resilience policies in force, if any."""
        return self._resilience

    @property
    def store(self) -> ProfileStore | None:
        """The attached profile store, if any."""
        return self._store

    @property
    def hydrated_budget(self) -> int | None:
        """The hydrated-account cap (``None`` = unbounded)."""
        return self._hydrated_budget

    def __len__(self) -> int:
        return len(self._directory)

    def __contains__(self, user_id: object) -> bool:
        return user_id in self._directory

    def __iter__(self) -> Iterator[UserAccount]:
        """Iterate the *hydrated* accounts (cold users have none)."""
        with self._registry_lock:
            return iter(list(self._accounts.values()))

    # ------------------------------------------------------------------
    # Durability plumbing
    # ------------------------------------------------------------------
    def _baseline_payload(self, user_id: str, persona: dict) -> dict:
        """Serialized default profile for recovery's edit replay."""
        return profile_to_dict(
            default_profile(Persona(**persona), self._environment)
        )

    def _recover(self) -> None:
        self._adopt(recover_state(self._store, self._baseline_payload))

    def _adopt(self, state: RecoveredState) -> None:
        """Seed the (cold) population from recovered pure data."""
        for user_id, payload in state.directory.items():
            self._directory[user_id] = Persona(**payload)
        self._overrides = dict(state.overrides)
        self.last_recovery = state
        self._record_population()

    def _append(self, record: dict) -> None:
        """WAL-append one record and advance the snapshot cadence."""
        self._store.append(record)
        self._note_appends(1)

    def _note_appends(self, count: int) -> None:
        if self._snapshot_every is None:
            return
        with self._registry_lock:
            self._appends_since_snapshot += count
            if self._appends_since_snapshot < self._snapshot_every:
                return
            self._appends_since_snapshot = 0
        self.snapshot(compact=True)

    def _commit_edit(self, account: UserAccount, record: dict, undo) -> None:
        """Persist an already-applied profile mutation.

        The override is refreshed *before* the WAL append, both under
        the documented ordering that makes concurrent snapshots safe: a
        snapshot copies the overrides and then reads the store's last
        LSN under the registry lock, so it either misses both the
        override and the record (replay supplies the edit) or sees the
        override with a covered LSN below the record's (replay re-applies
        the edit idempotently). It can never see the record's LSN
        without its override.

        If the append fails, ``undo`` reverts the repository mutation
        and the previous override is restored - a failed edit call
        leaves no trace in RAM or (by definition of the failure) on
        disk.
        """
        if not self._paging:
            return
        user_id = account.user_id
        serialized = profile_to_dict(account.repository.profile)
        with self._registry_lock:
            previous = self._overrides.get(user_id)
            self._overrides[user_id] = serialized
        if self._store is None:
            return
        try:
            self._append(record)
        except Exception:
            with self._registry_lock:
                if previous is None:
                    self._overrides.pop(user_id, None)
                else:
                    self._overrides[user_id] = previous
            undo()
            raise

    def snapshot(self, compact: bool = False) -> int:
        """Persist the whole population as a snapshot; returns the
        covered LSN.

        The directory, overrides and covered LSN are captured together
        under the registry lock, so the snapshot is consistent with the
        WAL (see :meth:`_commit_edit`); the record stream itself is
        written outside any service lock. With ``compact=True`` the
        WAL's covered prefix is dropped afterwards.

        Raises:
            ReproError: If no store is attached.
        """
        if self._store is None:
            raise ReproError("snapshot() requires a profile store")
        with self._registry_lock:
            users = sorted(self._directory.items())
            overrides = dict(self._overrides)
            covered = self._store.last_lsn()
        self._store.write_snapshot(
            self._snapshot_stream(users, overrides), covered
        )
        if compact:
            self._store.compact_wal(covered)
        return covered

    @staticmethod
    def _snapshot_stream(
        users: list[tuple[str, Persona]], overrides: dict[str, dict]
    ) -> Iterator[dict]:
        # Mirrors repro.storage.recovery.snapshot_records, but streams
        # straight from Persona objects so a million-user snapshot
        # never materialises a payload copy of the directory.
        for user_id, persona in users:
            yield {"op": "register", "user": user_id, "persona": asdict(persona)}
        for user_id in sorted(overrides):
            yield {"op": "import", "user": user_id, "profile": overrides[user_id]}

    def close(self) -> None:
        """Flush and close the attached store (no-op without one)."""
        if self._store is not None:
            self._store.close()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, user_id: str, persona: Persona) -> UserAccount:
        """Register a user; they receive their persona's default profile.

        The new account starts hydrated (the caller usually queries or
        edits it next); with a store attached the registration is
        WAL-appended before this returns, and a failed append rolls the
        registration back entirely.

        Raises:
            ReproError: On empty/duplicate user ids.
        """
        if not user_id:
            raise ReproError("user id must be non-empty")
        with self._user_locks.write_locked(user_id):
            with self._registry_lock:
                if user_id in self._directory:
                    raise ReproError(f"user {user_id!r} is already registered")
            # Build the profile outside the registry lock (it is the
            # expensive part); the duplicate check is re-validated by
            # the dict insert below, which the user write lock already
            # serialises against concurrent registers of the same id.
            account = self._build_account(user_id, persona, override=None)
            with self._registry_lock:
                self._directory[user_id] = persona
                self._accounts[user_id] = account
                self._accounts.move_to_end(user_id)
                victims = self._shrink_to_budget_locked()
                self._record_population()
            if self._store is not None:
                try:
                    self._append(
                        {
                            "op": "register",
                            "user": user_id,
                            "persona": asdict(persona),
                        }
                    )
                except Exception:
                    with self._registry_lock:
                        self._directory.pop(user_id, None)
                        self._accounts.pop(user_id, None)
                        self._record_population()
                    raise
            for victim in victims:
                self._retire_cache(victim)
            return account

    def register_many(
        self,
        users: Iterable[tuple[str, Persona]],
        batch_size: int = 4096,
    ) -> int:
        """Bulk-register users **cold**: directory entries plus batched
        WAL appends, no profile trees or caches.

        The mass-onboarding path: a million registrations cost a
        million directory inserts and a few hundred batched WAL
        writes; each user's profile is built lazily the first time a
        query or edit hydrates them. Returns the number registered.

        Raises:
            ReproError: On empty/duplicate user ids (the offending
                batch is rolled back; earlier batches stay registered
                and logged).
        """
        registered = 0
        users = iter(users)
        while True:
            batch: list[tuple[str, Persona]] = []
            for entry in users:
                batch.append(entry)
                if len(batch) >= batch_size:
                    break
            if not batch:
                break
            with self._registry_lock:
                for user_id, _ in batch:
                    if not user_id:
                        raise ReproError("user id must be non-empty")
                    if user_id in self._directory:
                        raise ReproError(
                            f"user {user_id!r} is already registered"
                        )
                seen = {user_id for user_id, _ in batch}
                if len(seen) != len(batch):
                    raise ReproError("duplicate user ids within batch")
                for user_id, persona in batch:
                    self._directory[user_id] = persona
            if self._store is not None:
                try:
                    self._store.append_many(
                        {
                            "op": "register",
                            "user": user_id,
                            "persona": asdict(persona),
                        }
                        for user_id, persona in batch
                    )
                except Exception:
                    with self._registry_lock:
                        for user_id, _ in batch:
                            self._directory.pop(user_id, None)
                    raise
                self._note_appends(len(batch))
            registered += len(batch)
        self._record_population()
        return registered

    def unregister(self, user_id: str) -> None:
        """Drop a user and their profile.

        The user's result cache (if any) is detached from the relation:
        building the executor wired the cache's mutation listener onto
        the shared relation (``cache.watch``), and without the unwatch
        every register/unregister cycle would leave a dead callback
        firing on each insert.

        Raises:
            ReproError: If the user is unknown.
        """
        with self._user_locks.write_locked(user_id):
            with self._registry_lock:
                if user_id not in self._directory:
                    raise ReproError(f"unknown user {user_id!r}")
                persona = self._directory.pop(user_id)
                override = self._overrides.pop(user_id, None)
                account = self._accounts.pop(user_id, None)
            if self._store is not None:
                try:
                    self._append({"op": "unregister", "user": user_id})
                except Exception:
                    with self._registry_lock:
                        self._directory[user_id] = persona
                        if override is not None:
                            self._overrides[user_id] = override
                        if account is not None:
                            self._accounts[user_id] = account
                        self._record_population()
                    raise
            if account is not None:
                self._retire_cache(account)
            # Population gauges are refreshed after the cache detach so
            # the listener gauge never reports the retired listener.
            self._record_population()

    def _retire_cache(self, account: UserAccount) -> None:
        """Detach ``account``'s cache from the relation and drop the
        executor that wired it."""
        if account.cache is not None:
            account.cache.unwatch(self._relation)
        account._executor = None

    def _record_population(self) -> None:
        registry = get_registry()
        if registry.enabled:
            with self._registry_lock:
                registry.set_gauge("service.registered_users", len(self._directory))
                registry.set_gauge("service.hydrated_users", len(self._accounts))
                registry.set_gauge(
                    "service.relation_listeners",
                    self._relation.mutation_listener_count,
                )

    # ------------------------------------------------------------------
    # Paging (hydration & eviction)
    # ------------------------------------------------------------------
    def _build_account(
        self, user_id: str, persona: Persona, override: dict | None
    ) -> UserAccount:
        """A live account from the persona default or an override."""
        if override is not None:
            repository = PreferenceRepository(
                self._environment, profile_from_dict(override)
            )
        else:
            repository = PreferenceRepository(
                self._environment, default_profile(persona, self._environment)
            )
        cache = (
            ContextQueryTree(self._environment, capacity=self._cache_capacity)
            if self._cache_capacity is not None
            else None
        )
        return UserAccount(
            user_id=user_id, persona=persona, repository=repository, cache=cache
        )

    def _hydrate(self, user_id: str) -> UserAccount:
        """The user's live account, rebuilding it from paged-out state
        if needed. The caller must hold the user's lock (read or
        write), which serialises hydration against that user's edits.
        """
        with self._registry_lock:
            account = self._accounts.get(user_id)
            if account is not None:
                self._accounts.move_to_end(user_id)
                return account
            persona = self._directory.get(user_id)
            override = self._overrides.get(user_id)
        if persona is None:
            raise ReproError(f"unknown user {user_id!r}")
        # Tree + cache construction is the expensive part; do it
        # outside the registry lock. Two readers of the same user may
        # race here (they share a read lock); the loser's account is
        # discarded below before it ever watched the relation.
        account = self._build_account(user_id, persona, override)
        with self._registry_lock:
            existing = self._accounts.get(user_id)
            if existing is not None:
                self._accounts.move_to_end(user_id)
                return existing
            if user_id not in self._directory:
                raise ReproError(f"unknown user {user_id!r}")
            self._accounts[user_id] = account
            self._accounts.move_to_end(user_id)
            self._hydrations += 1
            victims = self._shrink_to_budget_locked()
            registry = get_registry()
            if registry.enabled:
                registry.inc("service.hydrations")
                registry.set_gauge("service.hydrated_users", len(self._accounts))
        for victim in victims:
            self._retire_cache(victim)
        return account

    def _shrink_to_budget_locked(self) -> list[UserAccount]:
        """Evict LRU accounts beyond the budget; registry lock held.

        Returns the victims; the caller retires their caches outside
        the lock. Victims need no write-back: their current serialized
        profile is already in the override map (refreshed at edit
        time), so rehydration rebuilds exactly the evicted state even
        if the victim is mid-query on another thread.
        """
        if self._hydrated_budget is None:
            return []
        victims: list[UserAccount] = []
        registry = get_registry()
        while len(self._accounts) > self._hydrated_budget:
            _, victim = self._accounts.popitem(last=False)
            victims.append(victim)
            self._evictions += 1
            if registry.enabled:
                registry.inc("service.evictions")
        return victims

    def is_hydrated(self, user_id: str) -> bool:
        """Whether the user currently has a live account in RAM."""
        with self._registry_lock:
            return user_id in self._accounts

    def paging_statistics(self) -> dict[str, object]:
        """Population and paging counters, captured consistently."""
        with self._registry_lock:
            return {
                "registered": len(self._directory),
                "hydrated": len(self._accounts),
                "overrides": len(self._overrides),
                "hydrated_budget": self._hydrated_budget,
                "hydrations": self._hydrations,
                "evictions": self._evictions,
                "store_lsn": (
                    self._store.last_lsn() if self._store is not None else None
                ),
            }

    def account(self, user_id: str) -> UserAccount:
        """Look up a registered user's live account, hydrating it from
        paged-out state if needed.

        Raises:
            ReproError: If the user is unknown.
        """
        with self._user_locks.read_locked(user_id):
            return self._hydrate(user_id)

    # ------------------------------------------------------------------
    # Profile editing (the study's "modifications")
    # ------------------------------------------------------------------
    @staticmethod
    def _fire_edit_faults() -> None:
        # The ``service.edit`` injection site fires *before* any
        # mutation: an injected edit failure must leave the repository,
        # the executor and the cache exactly as they were (fail-fast),
        # never a mutated repository with a stale cache.
        faults = get_fault_registry()
        if faults.enabled:
            faults.fire("service.edit")

    def add_preference(self, user_id: str, preference: ContextualPreference) -> None:
        """Insert one preference into the user's profile."""
        self._fire_edit_faults()
        with self._user_locks.write_locked(user_id):
            account = self._hydrate(user_id)
            # Re-adding an identical preference is a repository no-op,
            # so a failed WAL append must then undo nothing - removing
            # it would destroy the pre-existing preference.
            inserted = preference not in account.repository.profile
            account.repository.add(preference)
            self._commit_edit(
                account,
                {
                    "op": "add",
                    "user": user_id,
                    "preference": preference_to_dict(preference),
                },
                undo=(
                    (lambda: account.repository.remove(preference))
                    if inserted
                    else (lambda: None)
                ),
            )
            self._after_edit(account, preference)

    def delete_preference(self, user_id: str, preference: ContextualPreference) -> None:
        """Delete one preference from the user's profile."""
        self._fire_edit_faults()
        with self._user_locks.write_locked(user_id):
            account = self._hydrate(user_id)
            account.repository.remove(preference)
            self._commit_edit(
                account,
                {
                    "op": "remove",
                    "user": user_id,
                    "preference": preference_to_dict(preference),
                },
                undo=lambda: account.repository.add(preference),
            )
            self._after_edit(account, preference)

    def update_preference(
        self, user_id: str, preference: ContextualPreference, new_score: float
    ) -> ContextualPreference:
        """Change a stored preference's score; returns the replacement."""
        self._fire_edit_faults()
        with self._user_locks.write_locked(user_id):
            account = self._hydrate(user_id)
            replacement = account.repository.update_score(preference, new_score)
            self._commit_edit(
                account,
                {
                    "op": "update",
                    "user": user_id,
                    "preference": preference_to_dict(preference),
                    "score": new_score,
                },
                undo=lambda: account.repository.update_score(
                    replacement, preference.score
                ),
            )
            self._after_edit(account, preference)
            return replacement

    def _after_edit(
        self,
        account: UserAccount,
        preference: ContextualPreference | None = None,
    ) -> None:
        account.modifications += 1
        account._executor = None  # the tree changed; rebuild lazily
        registry = get_registry()
        if registry.enabled:
            registry.inc("service.edits", labels={"user": account.user_id})
        if account.cache is None:
            return
        if preference is None:
            account.cache.clear()
            return
        # Precise invalidation: only queries resolved at states covered
        # by one of the edited preference's context states are stale.
        for state in preference.descriptor.states(self._environment):
            account.cache.invalidate_covered(state)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def _executor_for(self, account: UserAccount) -> ContextualQueryExecutor:
        # Query threads hold only the user's read lock, so two of them
        # may race the lazy build; the account lock makes it
        # build-once (the cache watch it wires is idempotent anyway,
        # but a single executor keeps resolver state shared).
        executor = account._executor
        if executor is None:
            with account._stats_lock:
                executor = account._executor
                if executor is None:
                    executor = ContextualQueryExecutor(
                        account.repository.tree,
                        self._relation,
                        metric=self._metric,
                        cache=account.cache,
                    )
                    account._executor = executor
            self._record_population()
        return executor

    def query(self, user_id: str, query: ContextualQuery) -> QueryResult:
        """Execute a contextual query as ``user_id``.

        A paged-out user is transparently hydrated first (their profile
        tree and cache are rebuilt from the serialized state).

        With resilience policies configured, the query is served
        through the degradation ladder and the result's
        ``degradation`` attribute names the level that produced it.

        Raises:
            QueryError: If the query's environment differs.
            RequestTimeout: If the request's propagated deadline (see
                :meth:`query_many`) has already expired.
            ServiceUnavailable: Resilient mode only - every degradation
                level failed.
        """
        if query.environment.names != self._environment.names:
            raise QueryError("query environment does not match the service's")
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("service.query")
        with self._user_locks.read_locked(user_id):
            account = self._hydrate(user_id)
            account._count_queries()
            registry = get_registry()
            if registry.enabled:
                registry.inc("service.queries", labels={"user": user_id})
            with span("service_query"):
                executor = self._executor_for(account)
                if self._resilience is not None:
                    return ResilientQueryExecutor(
                        executor, self._resilience, user_id=user_id
                    ).execute(query)
                return executor.execute(query)

    def query_at(
        self,
        user_id: str,
        state: ContextState,
        top_k: int | None = 20,
    ) -> QueryResult:
        """Convenience: query at an implicit current context state."""
        return self.query(user_id, ContextualQuery.at_state(state, top_k=top_k))

    #: Descriptors ranked between deadline checks in bounded rank_many.
    _RANK_CHUNK = 8

    def rank_many(
        self,
        user_id: str,
        descriptors: Sequence[ContextDescriptor | ExtendedContextDescriptor],
        timeout: float | None = None,
    ) -> tuple[list[QueryResult], BatchStats]:
        """Rank the relation for many context descriptors in one pass.

        The batched entry point for high-throughput serving: context
        resolution is memoized per distinct state and each distinct
        winning clause touches the relation once across the whole
        batch (see :func:`repro.query.rank.rank_cs_batch`). Returns
        one :class:`QueryResult` per descriptor plus the batch's memo
        statistics. A paged-out user is hydrated first, exactly as in
        :meth:`query`.

        ``timeout`` (or an already-propagated deadline) bounds the
        whole batch: descriptors are then ranked in chunks with a
        deadline check between chunks, so a slow batch raises
        :class:`~repro.exceptions.RequestTimeout` within one chunk of
        the budget instead of running to completion. Memoization is
        per chunk in that mode, so the ``unique_*`` statistics are
        summed over chunks.
        """
        with self._user_locks.read_locked(user_id):
            account = self._hydrate(user_id)
            descriptors = list(descriptors)
            executor = self._executor_for(account)
            deadline = Deadline.after(timeout) if timeout is not None else None
            with deadline_scope(deadline) as effective:
                if effective is None:
                    results, stats = executor.rank_many(descriptors)
                else:
                    results, stats = self._rank_chunked(
                        executor, descriptors, effective
                    )
            account._count_queries(len(descriptors))
            registry = get_registry()
            if registry.enabled:
                registry.inc(
                    "service.queries", len(descriptors), labels={"user": user_id}
                )
            return results, stats

    def _rank_chunked(
        self,
        executor: ContextualQueryExecutor,
        descriptors: list[ContextDescriptor | ExtendedContextDescriptor],
        deadline: Deadline,
    ) -> tuple[list[QueryResult], BatchStats]:
        results: list[QueryResult] = []
        stats = BatchStats()
        for start in range(0, len(descriptors), self._RANK_CHUNK):
            deadline.check("service.rank_many")
            chunk = descriptors[start : start + self._RANK_CHUNK]
            chunk_results, chunk_stats = executor.rank_many(chunk)
            results.extend(chunk_results)
            stats.descriptors += chunk_stats.descriptors
            stats.state_lookups += chunk_stats.state_lookups
            stats.unique_states += chunk_stats.unique_states
            stats.clause_lookups += chunk_stats.clause_lookups
            stats.unique_clauses += chunk_stats.unique_clauses
        return results, stats

    def query_many(
        self,
        requests: Sequence[tuple[str, ContextualQuery]],
        max_workers: int = 4,
        queue_depth: int | None = None,
        timeout: float | None = None,
        executor: ConcurrentQueryExecutor | None = None,
        deadline: float | None = None,
        shed_on_saturation: bool = False,
    ) -> list[RequestOutcome]:
        """Execute ``(user_id, query)`` requests on a bounded thread pool.

        The concurrent counterpart of calling :meth:`query` in a loop:
        requests fan out over a
        :class:`~repro.concurrency.ConcurrentQueryExecutor` and the
        per-user read/write locking guarantees each query sees a
        consistent profile. Outcomes come back in request order; a
        request whose query raised carries the exception instead of
        failing the whole batch.

        Failed outcomes carry **typed** errors: a shed request's
        ``outcome.error`` is a
        :class:`~repro.exceptions.ServiceUnavailable` and a timed-out
        or cancelled request's a
        :class:`~repro.exceptions.RequestTimeout`, each with the failed
        user id and query state attached (and the original executor
        error preserved in ``causes``), counted in the
        ``service.shed`` / ``service.timeouts`` metrics.

        Args:
            requests: ``(user_id, query)`` pairs.
            max_workers / queue_depth / timeout: Pool parameters for a
                temporary executor (see
                :class:`~repro.concurrency.ConcurrentQueryExecutor`).
            executor: Run on this executor instead of a temporary one
                (it is left running; the caller owns its lifecycle).
            deadline: Whole-batch time budget in seconds, propagated
                *into* each request as a
                :class:`~repro.resilience.Deadline` scope - stages
                check it mid-request instead of only at collection.
            shed_on_saturation: Submit non-blocking; a request that
                finds the pool full is shed with a typed
                ``ServiceUnavailable`` instead of queueing.

        Returns:
            One :class:`~repro.concurrency.RequestOutcome` per request,
            in request order; ``outcome.result`` is the
            :class:`QueryResult` when ``outcome.ok``.
        """
        requests = list(requests)
        batch_deadline = Deadline.after(deadline) if deadline is not None else None

        def request_fn(user_id: str, query: ContextualQuery):
            def run():
                with deadline_scope(batch_deadline):
                    return self.query(user_id, query)

            return run

        callables = [request_fn(user_id, query) for user_id, query in requests]
        block = not shed_on_saturation
        if executor is not None:
            outcomes = executor.run(callables, timeout=timeout, block=block)
        else:
            with ConcurrentQueryExecutor(
                max_workers=max_workers, queue_depth=queue_depth, timeout=timeout
            ) as pool:
                outcomes = pool.run(callables, block=block)
        return self._typed_outcomes(outcomes, requests, timeout)

    @staticmethod
    def _typed_outcomes(
        outcomes: list[RequestOutcome],
        requests: list[tuple[str, ContextualQuery]],
        timeout: float | None,
    ) -> list[RequestOutcome]:
        """Attach typed, identified errors to shed/expired outcomes."""
        registry = get_registry()
        for outcome in outcomes:
            user_id, query = requests[outcome.index]
            state = query.current_state
            if outcome.status == "rejected":
                outcome.error = ServiceUnavailable(
                    "request shed: executor saturated",
                    user_id=user_id,
                    state=state,
                    causes=(outcome.error,) if outcome.error is not None else (),
                )
                if registry.enabled:
                    registry.inc("service.shed")
            elif outcome.status in ("timeout", "cancelled"):
                detail = (
                    f"request exceeded its {timeout}s collection timeout"
                    if outcome.status == "timeout"
                    else "request cancelled before running (batch out of time)"
                )
                # Preserve the executor's underlying error (if any) the
                # same way the rejected branch does: a timed-out request
                # that *also* failed downstream keeps its root cause.
                outcome.error = RequestTimeout(
                    detail,
                    user_id=user_id,
                    state=state,
                    causes=(outcome.error,) if outcome.error is not None else (),
                )
                if registry.enabled:
                    registry.inc("service.timeouts")
        return outcomes

    # ------------------------------------------------------------------
    # Persistence & statistics
    # ------------------------------------------------------------------
    def export_profile(self, user_id: str) -> str:
        """The user's profile as JSON (see :mod:`repro.io`)."""
        with self._user_locks.read_locked(user_id):
            return self._hydrate(user_id).repository.to_json()

    def import_profile(self, user_id: str, text: str) -> None:
        """Replace the user's profile from :meth:`export_profile` output.

        The imported profile must be expressed over the service's own
        context environment; accepting a foreign one would corrupt
        later queries and cache keys (states and descriptors are
        positional over the environment's parameters). The comparison
        is **structural** - parameter names *and* their hierarchies'
        levels, members and parent links - because a same-named
        environment with, say, reordered hierarchy levels changes what
        every serialized state means. The check also guards
        rehydration: overrides round-trip through this same serialized
        form, so only structurally identical environments may enter the
        override map. The user's result cache is replaced wholesale -
        the old one is first unwatched from the relation so its
        mutation listener does not outlive it, and the new one is not
        watched until the next query builds an executor for it.

        Raises:
            ReproError: If the payload's environment differs from the
                service's (by name or structure).
        """
        self._fire_edit_faults()
        repository = PreferenceRepository.from_json(text)
        if repository.environment != self._environment:
            raise ReproError(
                "imported profile's context environment "
                f"{list(repository.environment.names)!r} does not match the "
                f"service's {list(self._environment.names)!r} (names and "
                "hierarchy structure must both match)"
            )
        serialized = profile_to_dict(repository.profile)
        with self._user_locks.write_locked(user_id):
            account = self._hydrate(user_id)
            # Persist first: the account is untouched if the WAL
            # append fails, so no rollback of live objects is needed.
            if self._paging:
                with self._registry_lock:
                    previous = self._overrides.get(user_id)
                    self._overrides[user_id] = serialized
                if self._store is not None:
                    try:
                        self._append(
                            {"op": "import", "user": user_id, "profile": serialized}
                        )
                    except Exception:
                        with self._registry_lock:
                            if previous is None:
                                self._overrides.pop(user_id, None)
                            else:
                                self._overrides[user_id] = previous
                        raise
            account.repository = repository
            if account.cache is not None:
                account.cache.unwatch(self._relation)
                account.cache = ContextQueryTree(
                    self._environment, capacity=self._cache_capacity
                )
            self._after_edit(account)

    def statistics(self) -> list[dict[str, object]]:
        """Per-user usage statistics for the *hydrated* accounts,
        sorted by user id (cold users have no live counters to read;
        see :meth:`paging_statistics` for population totals).

        The account list is snapshotted under the registry lock, so a
        concurrent ``register``/``unregister`` cannot resize the dict
        mid-iteration; each row then reads one account's counters
        (monotonic ints - a row is at worst one event behind).
        """
        with self._registry_lock:
            accounts = sorted(self._accounts.values(), key=lambda a: a.user_id)
        return [
            {
                "user_id": account.user_id,
                "persona_key": account.persona.key,
                "preferences": len(account.repository),
                "modifications": account.modifications,
                "queries": account.queries_executed,
                "cache_hit_rate": (
                    account.cache.hit_rate() if account.cache is not None else None
                ),
                "cache_evictions": (
                    account.cache.evictions if account.cache is not None else None
                ),
                "cache_invalidations": (
                    account.cache.invalidations if account.cache is not None else None
                ),
            }
            for account in accounts
        ]
