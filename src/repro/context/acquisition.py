"""Acquiring the implicit current context (Sec. 4.1).

The context of a contextual query defaults to "the current context,
that is, the context surrounding the user at the time of the submission
of the query". The paper notes that sensors may only deliver *rough*
values - "a context parameter may take a single value from a higher
level of the hierarchy or even more than one value".

This module models that acquisition layer: per-parameter
:class:`ContextSource` objects feed a :class:`CurrentContext` that
assembles query context: a single :class:`ContextState` when every
source reports one value, or a :class:`ContextDescriptor` when some
source reports several candidates (limited accuracy). Sources that have
not reported, or whose reading is older than their freshness bound,
degrade to ``'all'`` - the unknown-context value.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.exceptions import ContextError
from repro.context.descriptor import ContextDescriptor, ParameterDescriptor
from repro.context.environment import ContextEnvironment
from repro.context.state import ContextState
from repro.hierarchy import ALL_VALUE, Value

__all__ = ["ContextSource", "CurrentContext"]


class ContextSource:
    """The reading source of one context parameter.

    Args:
        parameter_name: The parameter this source feeds.
        max_age: Readings older than this many time units are considered
            stale and degrade to ``'all'``; ``None`` disables expiry.

    A reading is one or more values from the parameter's extended
    domain, tagged with the time it was taken. A GPS fix is a single
    detailed value; a cell-tower fix might be a city-level value; an
    ambiguous fix is several candidate values.
    """

    def __init__(self, parameter_name: str, max_age: float | None = None) -> None:
        if not parameter_name:
            raise ContextError("source parameter name must be non-empty")
        if max_age is not None and max_age <= 0:
            raise ContextError(f"max_age must be positive or None, got {max_age}")
        self._parameter_name = parameter_name
        self._max_age = max_age
        self._values: tuple[Value, ...] = ()
        self._timestamp: float | None = None

    @property
    def parameter_name(self) -> str:
        """The parameter this source feeds."""
        return self._parameter_name

    @property
    def max_age(self) -> float | None:
        """Freshness bound for readings."""
        return self._max_age

    def report(self, values: Value | Iterable[Value], timestamp: float) -> None:
        """Record a reading: one value, or several candidates.

        Raises:
            ContextError: On an empty reading or a timestamp going
                backwards.
        """
        if isinstance(values, (str, int)):
            values = (values,)
        values = tuple(values)
        if not values:
            raise ContextError("a reading needs at least one value")
        if self._timestamp is not None and timestamp < self._timestamp:
            raise ContextError(
                f"reading timestamp {timestamp} precedes the previous "
                f"reading at {self._timestamp}"
            )
        self._values = values
        self._timestamp = timestamp

    def current(self, now: float) -> tuple[Value, ...]:
        """The current candidate values, or ``('all',)`` if unknown/stale."""
        if self._timestamp is None:
            return (ALL_VALUE,)
        if self._max_age is not None and now - self._timestamp > self._max_age:
            return (ALL_VALUE,)
        return self._values

    def is_fresh(self, now: float) -> bool:
        """True iff the source has a non-stale reading."""
        return self.current(now) != (ALL_VALUE,) or self._values == (ALL_VALUE,)

    def __repr__(self) -> str:
        return (
            f"ContextSource({self._parameter_name!r}, values={self._values}, "
            f"at={self._timestamp})"
        )


class CurrentContext:
    """Assembles the implicit query context from per-parameter sources.

    Example:
        >>> current = CurrentContext(env)
        >>> current.source("location").report("Plaka", timestamp=10.0)
        >>> current.source("temperature").report(["warm", "hot"], timestamp=10.0)
        >>> current.descriptor(now=11.0)   # ambiguous -> descriptor
        ContextDescriptor(...)
    """

    def __init__(
        self,
        environment: ContextEnvironment,
        max_age: float | Mapping[str, float] | None = None,
    ) -> None:
        self._environment = environment
        if isinstance(max_age, Mapping):
            unknown = set(max_age) - set(environment.names)
            if unknown:
                raise ContextError(
                    f"max_age names unknown parameters: {sorted(unknown)}"
                )
            ages = {name: max_age.get(name) for name in environment.names}
        else:
            ages = {name: max_age for name in environment.names}
        self._sources = {
            parameter.name: ContextSource(parameter.name, ages[parameter.name])
            for parameter in environment
        }

    @property
    def environment(self) -> ContextEnvironment:
        """The context environment."""
        return self._environment

    def source(self, parameter_name: str) -> ContextSource:
        """The source feeding ``parameter_name``.

        Raises:
            ContextError: For parameters outside the environment.
        """
        try:
            return self._sources[parameter_name]
        except KeyError:
            raise ContextError(
                f"no context source for parameter {parameter_name!r}"
            ) from None

    def report(
        self, parameter_name: str, values: Value | Iterable[Value], timestamp: float
    ) -> None:
        """Convenience: forward a reading to the right source."""
        self.source(parameter_name).report(values, timestamp)

    def is_ambiguous(self, now: float) -> bool:
        """True iff some source currently reports several candidates."""
        return any(
            len(source.current(now)) > 1 for source in self._sources.values()
        )

    def state(self, now: float) -> ContextState:
        """The current context as a single state.

        Requires every source to be unambiguous; multi-valued readings
        raise (use :meth:`descriptor` for those).
        """
        values = []
        for parameter in self._environment:
            current = self._sources[parameter.name].current(now)
            if len(current) > 1:
                raise ContextError(
                    f"parameter {parameter.name!r} is ambiguous "
                    f"({list(current)}); use descriptor() instead"
                )
            values.append(current[0])
        return ContextState(self._environment, values)

    def descriptor(self, now: float) -> ContextDescriptor:
        """The current context as a descriptor (handles ambiguity).

        Single-valued readings become equality conditions, multi-valued
        readings ``one_of`` conditions, and unknown/stale parameters are
        simply omitted (= ``'all'``, Def. 4).
        """
        conditions = []
        for parameter in self._environment:
            current = self._sources[parameter.name].current(now)
            if current == (ALL_VALUE,):
                continue
            if len(current) == 1:
                conditions.append(
                    ParameterDescriptor.equals(parameter.name, current[0])
                )
            else:
                conditions.append(ParameterDescriptor.one_of(parameter.name, current))
        return ContextDescriptor(conditions)
