"""Context model: parameters, environments, states, descriptors (Sec. 3.1)."""

from repro.context.acquisition import ContextSource, CurrentContext
from repro.context.descriptor import (
    ContextDescriptor,
    ExtendedContextDescriptor,
    ParameterDescriptor,
)
from repro.context.environment import ContextEnvironment
from repro.context.parameter import ContextParameter
from repro.context.state import ContextState, covers_set

__all__ = [
    "ContextDescriptor",
    "ContextEnvironment",
    "ContextParameter",
    "ContextSource",
    "ContextState",
    "CurrentContext",
    "ExtendedContextDescriptor",
    "ParameterDescriptor",
    "covers_set",
]
