"""Distances between context states (Defs. 13-17).

Two metrics capture how far apart two (extended) context states are:

* the **hierarchy distance** (Defs. 13-15): per parameter, the number
  of hierarchy-level edges between the two values' levels, summed;
* the **Jaccard distance** (Defs. 16-17): per parameter, one minus the
  Jaccard coefficient of the two values' detailed-level descendant
  sets, summed.

Properties 1-3 of the paper - both metrics order covering states
consistently with the ``covers`` partial order - are exercised by the
property-based tests.
"""

from __future__ import annotations

from repro.exceptions import ContextError, HierarchyError
from repro.context.state import ContextState
from repro.hierarchy import Hierarchy, Level, Value

__all__ = [
    "METRICS",
    "level_distance",
    "hierarchy_value_distance",
    "hierarchy_state_distance",
    "jaccard_value_distance",
    "jaccard_state_distance",
    "state_distance",
]

#: Names of the supported distance metrics.
METRICS = ("hierarchy", "jaccard")


def level_distance(hierarchy: Hierarchy, first: Level | str, second: Level | str) -> int:
    """Def. 14: minimum number of edges between two levels.

    Within one chain hierarchy a path always exists, so the distance is
    the absolute difference of the level indices. (The infinite case of
    Def. 14 would only arise across unrelated lattices, which a single
    :class:`Hierarchy` cannot express.)
    """
    if isinstance(first, str):
        first = hierarchy.level(first)
    if isinstance(second, str):
        second = hierarchy.level(second)
    for level in (first, second):
        if level not in hierarchy.levels:
            raise HierarchyError(
                f"level {level!r} does not belong to hierarchy {hierarchy.name!r}"
            )
    return abs(first.index - second.index)


def hierarchy_value_distance(hierarchy: Hierarchy, first: Value, second: Value) -> int:
    """Level distance between the levels of two values of one hierarchy."""
    return level_distance(
        hierarchy, hierarchy.level_of(first), hierarchy.level_of(second)
    )


def jaccard_value_distance(hierarchy: Hierarchy, first: Value, second: Value) -> float:
    """Def. 16: ``1 - |leaves(v1) & leaves(v2)| / |leaves(v1) | leaves(v2)|``.

    ``leaves`` are each value's descendants at the detailed level; for a
    detailed value that is the value itself, for ``'all'`` the whole
    detailed domain.
    """
    first_leaves = hierarchy.leaves(first)
    second_leaves = hierarchy.leaves(second)
    union = first_leaves | second_leaves
    if not union:  # pragma: no cover - hierarchies forbid empty leaf sets
        return 0.0
    intersection = first_leaves & second_leaves
    return 1.0 - len(intersection) / len(union)


def _check_environments(first: ContextState, second: ContextState) -> None:
    if first.environment.names != second.environment.names:
        raise ContextError(
            "cannot measure distance between states of different environments"
        )


def hierarchy_state_distance(first: ContextState, second: ContextState) -> int:
    """Def. 15: sum of per-parameter level distances."""
    _check_environments(first, second)
    return sum(
        hierarchy_value_distance(parameter.hierarchy, mine, theirs)
        for parameter, mine, theirs in zip(
            first.environment, first.values, second.values
        )
    )


def jaccard_state_distance(first: ContextState, second: ContextState) -> float:
    """Def. 17: sum of per-parameter Jaccard distances."""
    _check_environments(first, second)
    return sum(
        jaccard_value_distance(parameter.hierarchy, mine, theirs)
        for parameter, mine, theirs in zip(
            first.environment, first.values, second.values
        )
    )


def state_distance(
    first: ContextState, second: ContextState, metric: str = "hierarchy"
) -> float:
    """Dispatch to one of the two state distances by metric name."""
    if metric == "hierarchy":
        return float(hierarchy_state_distance(first, second))
    if metric == "jaccard":
        return jaccard_state_distance(first, second)
    raise ContextError(f"unknown metric {metric!r}; expected one of {METRICS}")
