"""Context descriptors (Defs. 1-4) and extended context descriptors (Def. 8).

A *parameter descriptor* constrains one context parameter to a point, a
finite set, or a range of values of its extended domain. A *composite
context descriptor* conjoins at most one parameter descriptor per
parameter and denotes a finite set of extended context states: the
Cartesian product of the per-parameter value sets, with ``'all'`` for
unmentioned parameters (Def. 4). An *extended context descriptor* is a
disjunction of composites (Def. 8) used to contextualise queries.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Mapping, Sequence

from repro.exceptions import DescriptorError, ReproError
from repro.context.environment import ContextEnvironment
from repro.context.state import ContextState
from repro.hierarchy import ALL_VALUE, Value

__all__ = [
    "ParameterDescriptor",
    "ContextDescriptor",
    "ExtendedContextDescriptor",
]


class ParameterDescriptor:
    """A condition ``cod(Ci)`` on one context parameter (Def. 1).

    Build instances through the classmethods:

    * :meth:`equals` - ``Ci = v``
    * :meth:`one_of` - ``Ci in {v1, ..., vm}``
    * :meth:`between` - ``Ci in [v1, vm]`` (range within one level)

    ``context(parameter)`` materialises the finite value set of Def. 2;
    ranges are expanded against the parameter's declared value order.
    """

    _KINDS = ("equals", "one_of", "between")

    def __init__(self, parameter_name: str, kind: str, payload: tuple[Value, ...]) -> None:
        if kind not in self._KINDS:
            raise DescriptorError(f"unknown descriptor kind {kind!r}")
        if not parameter_name:
            raise DescriptorError("parameter name must be non-empty")
        if not payload:
            raise DescriptorError("a parameter descriptor needs at least one value")
        self._parameter_name = parameter_name
        self._kind = kind
        self._payload = payload

    @classmethod
    def equals(cls, parameter_name: str, value: Value) -> "ParameterDescriptor":
        """``Ci = value``."""
        return cls(parameter_name, "equals", (value,))

    @classmethod
    def one_of(cls, parameter_name: str, values: Iterable[Value]) -> "ParameterDescriptor":
        """``Ci in {v1, ..., vm}``; duplicates are removed, order kept."""
        unique = tuple(dict.fromkeys(values))
        return cls(parameter_name, "one_of", unique)

    @classmethod
    def between(cls, parameter_name: str, low: Value, high: Value) -> "ParameterDescriptor":
        """``Ci in [low, high]`` over the declared order of one level."""
        return cls(parameter_name, "between", (low, high))

    @property
    def parameter_name(self) -> str:
        """Name of the constrained parameter."""
        return self._parameter_name

    @property
    def kind(self) -> str:
        """One of ``"equals"``, ``"one_of"``, ``"between"``."""
        return self._kind

    @property
    def payload(self) -> tuple[Value, ...]:
        """The raw values: a point, a set, or the two range endpoints."""
        return self._payload

    def context(self, environment: ContextEnvironment) -> tuple[Value, ...]:
        """Def. 2: the finite set of values this descriptor denotes.

        Values are validated against the parameter's extended domain;
        ranges are expanded using the level's declared value order.

        Raises:
            DescriptorError: On unknown values or cross-level ranges.
        """
        parameter = environment[self._parameter_name]
        hierarchy = parameter.hierarchy
        for value in self._payload:
            if value not in hierarchy:
                raise DescriptorError(
                    f"{value!r} is not in the extended domain of "
                    f"{self._parameter_name!r}"
                )
        if self._kind == "between":
            low, high = self._payload
            try:
                values = hierarchy.values_between(low, high)
            except ReproError as exc:
                raise DescriptorError(str(exc)) from exc
            if not values:
                raise DescriptorError(
                    f"empty range [{low!r}, {high!r}] for {self._parameter_name!r}"
                )
            return values
        return self._payload

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ParameterDescriptor):
            return NotImplemented
        return (
            self._parameter_name == other._parameter_name
            and self._kind == other._kind
            and self._payload == other._payload
        )

    def __hash__(self) -> int:
        return hash((self._parameter_name, self._kind, self._payload))

    def __repr__(self) -> str:
        if self._kind == "equals":
            return f"({self._parameter_name} = {self._payload[0]!r})"
        if self._kind == "one_of":
            inner = ", ".join(repr(value) for value in self._payload)
            return f"({self._parameter_name} in {{{inner}}})"
        low, high = self._payload
        return f"({self._parameter_name} in [{low!r}, {high!r}])"


class ContextDescriptor:
    """A composite context descriptor (Def. 3): a conjunction of
    parameter descriptors, at most one per parameter.

    ``states(environment)`` computes ``Context(cod)`` per Def. 4: the
    Cartesian product of the per-parameter contexts, using ``'all'``
    for parameters without a descriptor.

    Example:
        >>> cod = ContextDescriptor([
        ...     ParameterDescriptor.equals("location", "Plaka"),
        ...     ParameterDescriptor.one_of("temperature", ["warm", "hot"]),
        ... ])
        >>> len(cod.states(env))
        2
    """

    def __init__(self, descriptors: Iterable[ParameterDescriptor] = ()) -> None:
        descriptors = tuple(descriptors)
        names = [descriptor.parameter_name for descriptor in descriptors]
        if len(set(names)) != len(names):
            raise DescriptorError(
                f"at most one parameter descriptor per parameter; got {names}"
            )
        self._descriptors = descriptors
        self._by_name = {
            descriptor.parameter_name: descriptor for descriptor in descriptors
        }

    @classmethod
    def from_mapping(cls, conditions: Mapping[str, object]) -> "ContextDescriptor":
        """Convenience builder from ``{parameter: condition}``.

        A condition may be a single value (``equals``), a list/set/tuple
        of values (``one_of``), or a ``(low, high)`` 2-tuple tagged by
        being a tuple (``between``).

        Example:
            >>> ContextDescriptor.from_mapping({
            ...     "location": "Plaka",
            ...     "temperature": ("mild", "hot"),
            ...     "accompanying_people": ["friends", "family"],
            ... })
        """
        descriptors = []
        for name, condition in conditions.items():
            if isinstance(condition, tuple) and len(condition) == 2:
                descriptors.append(ParameterDescriptor.between(name, *condition))
            elif isinstance(condition, (list, set, frozenset)):
                ordered = sorted(condition) if isinstance(condition, (set, frozenset)) else condition
                descriptors.append(ParameterDescriptor.one_of(name, ordered))
            else:
                descriptors.append(ParameterDescriptor.equals(name, condition))
        return cls(descriptors)

    @classmethod
    def empty(cls) -> "ContextDescriptor":
        """The empty descriptor, denoting ``(all, ..., all)`` only."""
        return cls(())

    @property
    def descriptors(self) -> tuple[ParameterDescriptor, ...]:
        """The parameter descriptors, in declaration order."""
        return self._descriptors

    def descriptor_for(self, parameter_name: str) -> ParameterDescriptor | None:
        """The descriptor constraining ``parameter_name``, if any."""
        return self._by_name.get(parameter_name)

    def is_empty(self) -> bool:
        """True iff no parameter is constrained."""
        return not self._descriptors

    def states(self, environment: ContextEnvironment) -> tuple[ContextState, ...]:
        """Def. 4: the finite set ``Context(cod)`` of extended states."""
        unknown = set(self._by_name) - set(environment.names)
        if unknown:
            raise DescriptorError(
                f"descriptor mentions parameters outside the environment: "
                f"{sorted(unknown)}"
            )
        per_parameter: list[tuple[Value, ...]] = []
        for parameter in environment:
            descriptor = self._by_name.get(parameter.name)
            if descriptor is None:
                per_parameter.append((ALL_VALUE,))
            else:
                per_parameter.append(descriptor.context(environment))
        return tuple(
            ContextState(environment, combination)
            for combination in itertools.product(*per_parameter)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ContextDescriptor):
            return NotImplemented
        return self._by_name == other._by_name

    def __hash__(self) -> int:
        return hash(frozenset(self._by_name.items()))

    def __repr__(self) -> str:
        if not self._descriptors:
            return "ContextDescriptor(<empty>)"
        inner = " AND ".join(repr(descriptor) for descriptor in self._descriptors)
        return f"ContextDescriptor({inner})"


class ExtendedContextDescriptor:
    """An extended context descriptor (Def. 8): a disjunction of
    composite context descriptors, used to contextualise queries.

    ``states(environment)`` returns the union of the disjuncts'
    contexts, with duplicates removed and first-seen order preserved.
    """

    def __init__(self, disjuncts: Iterable[ContextDescriptor]) -> None:
        disjuncts = tuple(disjuncts)
        if not disjuncts:
            raise DescriptorError(
                "an extended context descriptor needs at least one disjunct"
            )
        self._disjuncts = disjuncts

    @classmethod
    def single(cls, descriptor: ContextDescriptor) -> "ExtendedContextDescriptor":
        """Wrap one composite descriptor."""
        return cls((descriptor,))

    @property
    def disjuncts(self) -> tuple[ContextDescriptor, ...]:
        """The composite descriptors being disjoined."""
        return self._disjuncts

    def states(self, environment: ContextEnvironment) -> tuple[ContextState, ...]:
        """Union of the disjuncts' state sets, duplicates removed."""
        seen: dict[ContextState, None] = {}
        for disjunct in self._disjuncts:
            for state in disjunct.states(environment):
                seen.setdefault(state, None)
        return tuple(seen)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExtendedContextDescriptor):
            return NotImplemented
        return set(self._disjuncts) == set(other._disjuncts)

    def __hash__(self) -> int:
        return hash(frozenset(self._disjuncts))

    def __repr__(self) -> str:
        inner = " OR ".join(repr(disjunct) for disjunct in self._disjuncts)
        return f"ExtendedContextDescriptor({inner})"
