"""Context environments: the ordered set of context parameters of an app."""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence

from repro.exceptions import ContextError, UnknownParameterError
from repro.context.parameter import ContextParameter

__all__ = ["ContextEnvironment"]


class ContextEnvironment:
    """The context environment ``CE_X = {C1, ..., Cn}`` of an application.

    The environment fixes the identity *and order* of the context
    parameters; states, descriptors and profile trees are all expressed
    relative to one environment.

    Example:
        >>> from repro.hierarchy import location_hierarchy
        >>> from repro.context import ContextParameter
        >>> env = ContextEnvironment([ContextParameter(location_hierarchy())])
        >>> env.names
        ('location',)
    """

    def __init__(self, parameters: Sequence[ContextParameter]) -> None:
        params = tuple(parameters)
        if not params:
            raise ContextError("a context environment needs at least one parameter")
        names = [param.name for param in params]
        if len(set(names)) != len(names):
            raise ContextError(f"duplicate context parameter names: {names}")
        self._parameters = params
        self._index = {param.name: position for position, param in enumerate(params)}

    @property
    def parameters(self) -> tuple[ContextParameter, ...]:
        """The parameters, in declaration order."""
        return self._parameters

    @property
    def names(self) -> tuple[str, ...]:
        """Parameter names, in declaration order."""
        return tuple(param.name for param in self._parameters)

    def __len__(self) -> int:
        return len(self._parameters)

    def __iter__(self) -> Iterator[ContextParameter]:
        return iter(self._parameters)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __getitem__(self, key: int | str) -> ContextParameter:
        if isinstance(key, str):
            return self._parameters[self.index_of(key)]
        return self._parameters[key]

    def index_of(self, name: str) -> int:
        """Position of the parameter called ``name``.

        Raises:
            UnknownParameterError: If the environment has no such parameter.
        """
        try:
            return self._index[name]
        except KeyError:
            raise UnknownParameterError(
                f"environment has no context parameter {name!r}"
            ) from None

    def world_size(self) -> int:
        """``|W|``: number of detailed context states (Sec. 3.1)."""
        return math.prod(len(param.dom) for param in self._parameters)

    def extended_world_size(self) -> int:
        """``|EW|``: number of extended context states."""
        return math.prod(len(param.edom) for param in self._parameters)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ContextEnvironment):
            return NotImplemented
        return self._parameters == other._parameters

    def __hash__(self) -> int:
        return hash(self._parameters)

    def __repr__(self) -> str:
        return f"ContextEnvironment({list(self.names)})"
