"""Context states and the ``covers`` partial order (Secs. 3.1, 4.2).

A *context state* assigns one value to every parameter of an
environment. When every value is drawn from its parameter's detailed
domain the state is a member of the world ``W``; allowing values from
any hierarchy level yields *extended* context states, members of the
extended world ``EW``. This module implements both through a single
:class:`ContextState` class, plus the ``covers`` relation of Def. 10
(proved a partial order by Theorem 1) and its lifting to sets of states
(Def. 11).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import InvalidStateError
from repro.context.environment import ContextEnvironment
from repro.hierarchy import ALL_VALUE, Level, Value

__all__ = ["ContextState", "covers_set"]


class ContextState:
    """An (extended) context state ``s = (c1, ..., cn)``.

    Args:
        environment: The context environment the state belongs to.
        values: One value per parameter, in environment order; each must
            belong to the extended domain of its parameter.

    Example:
        >>> state = ContextState(env, ("Plaka", "warm", "friends"))
        >>> state["location"]
        'Plaka'
    """

    __slots__ = ("_environment", "_values", "_hash")

    def __init__(self, environment: ContextEnvironment, values: Sequence[Value]) -> None:
        values = tuple(values)
        if len(values) != len(environment):
            raise InvalidStateError(
                f"state has {len(values)} values but the environment has "
                f"{len(environment)} parameters"
            )
        for param, value in zip(environment, values):
            if value not in param:
                raise InvalidStateError(
                    f"{value!r} is not in the extended domain of parameter "
                    f"{param.name!r}"
                )
        self._environment = environment
        self._values = values
        self._hash = hash((environment.names, values))

    @classmethod
    def from_mapping(
        cls, environment: ContextEnvironment, mapping: Mapping[str, Value]
    ) -> "ContextState":
        """Build a state from ``{parameter name: value}``.

        Parameters missing from the mapping take the value ``'all'``.

        Raises:
            InvalidStateError: If the mapping names unknown parameters.
        """
        extra = set(mapping) - set(environment.names)
        if extra:
            raise InvalidStateError(f"unknown context parameters: {sorted(extra)}")
        values = tuple(mapping.get(name, ALL_VALUE) for name in environment.names)
        return cls(environment, values)

    @classmethod
    def all_state(cls, environment: ContextEnvironment) -> "ContextState":
        """The empty-context state ``(all, ..., all)``."""
        return cls(environment, (ALL_VALUE,) * len(environment))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def environment(self) -> ContextEnvironment:
        """The environment the state is expressed against."""
        return self._environment

    @property
    def values(self) -> tuple[Value, ...]:
        """The state's values, in environment order."""
        return self._values

    def __getitem__(self, key: int | str) -> Value:
        if isinstance(key, str):
            return self._values[self._environment.index_of(key)]
        return self._values[key]

    def __iter__(self) -> Iterator[Value]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def levels(self) -> tuple[Level, ...]:
        """``levels(s)`` (Def. 13): the hierarchy level of each value."""
        return tuple(
            param.hierarchy.level_of(value)
            for param, value in zip(self._environment, self._values)
        )

    def is_detailed(self) -> bool:
        """True iff every value sits at its parameter's detailed level."""
        return all(level.index == 0 for level in self.levels())

    def is_all(self) -> bool:
        """True iff this is the empty-context state ``(all, ..., all)``."""
        return all(value == ALL_VALUE for value in self._values)

    # ------------------------------------------------------------------
    # The covers partial order (Def. 10)
    # ------------------------------------------------------------------
    def covers(self, other: "ContextState") -> bool:
        """Def. 10: ``self`` covers ``other``.

        True iff for every parameter the two values are equal or
        ``self``'s value is an ancestor of ``other``'s.
        """
        self._check_same_environment(other)
        return all(
            param.hierarchy.covers_value(mine, theirs)
            for param, mine, theirs in zip(
                self._environment, self._values, other._values
            )
        )

    def strictly_covers(self, other: "ContextState") -> bool:
        """``self`` covers ``other`` and the two states differ."""
        return self != other and self.covers(other)

    def generalisations(self) -> Iterator["ContextState"]:
        """Yield every state that covers this one (including itself).

        The states are produced by replacing each value with each of its
        ancestors in every combination; there are
        ``prod(1 + #ancestors)`` of them.
        """
        options = [
            (value, *param.hierarchy.ancestors(value))
            for param, value in zip(self._environment, self._values)
        ]
        for combination in itertools.product(*options):
            yield ContextState(self._environment, combination)

    def _check_same_environment(self, other: "ContextState") -> None:
        if self._environment.names != other._environment.names:
            raise InvalidStateError(
                "states belong to different context environments: "
                f"{self._environment.names} vs {other._environment.names}"
            )

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ContextState):
            return NotImplemented
        return (
            self._environment.names == other._environment.names
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(repr(value) for value in self._values)
        return f"ContextState(({inner}))"


def covers_set(
    covering: Iterable[ContextState], covered: Iterable[ContextState]
) -> bool:
    """Def. 11: set ``covering`` covers set ``covered``.

    True iff every state of ``covered`` is covered by some state of
    ``covering``.
    """
    covering = list(covering)
    return all(
        any(upper.covers(state) for upper in covering) for state in covered
    )
