"""Context parameters: named multidimensional attributes (Sec. 3.1)."""

from __future__ import annotations

from repro.exceptions import ContextError
from repro.hierarchy import Hierarchy, Value

__all__ = ["ContextParameter"]


class ContextParameter:
    """One context parameter ``Ci`` with its hierarchical domain.

    A context parameter couples a name (``location``, ``temperature``,
    ...) with the :class:`~repro.hierarchy.Hierarchy` that organises its
    domain into levels. ``dom`` is the detailed domain and ``edom`` the
    extended domain (union of all levels, including ``'all'``).

    Args:
        name: Parameter name; defaults to the hierarchy's name.
        hierarchy: The hierarchy organising the parameter's values.
    """

    def __init__(self, hierarchy: Hierarchy, name: str | None = None) -> None:
        if not isinstance(hierarchy, Hierarchy):
            raise ContextError("a context parameter needs a Hierarchy domain")
        self._hierarchy = hierarchy
        self._name = name if name is not None else hierarchy.name
        if not self._name:
            raise ContextError("context parameter name must be non-empty")

    @property
    def name(self) -> str:
        """Parameter name."""
        return self._name

    @property
    def hierarchy(self) -> Hierarchy:
        """The hierarchy organising this parameter's values."""
        return self._hierarchy

    @property
    def dom(self) -> tuple[Value, ...]:
        """The detailed domain ``dom(Ci)``."""
        return self._hierarchy.dom

    @property
    def edom(self) -> tuple[Value, ...]:
        """The extended domain ``edom(Ci)`` (all levels plus ``'all'``)."""
        return self._hierarchy.edom

    def __contains__(self, value: object) -> bool:
        return value in self._hierarchy

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ContextParameter):
            return NotImplemented
        return self._name == other._name and self._hierarchy == other._hierarchy

    def __hash__(self) -> int:
        return hash((self._name, self._hierarchy))

    def __repr__(self) -> str:
        return f"ContextParameter({self._name!r}, levels={self._hierarchy.num_levels})"
