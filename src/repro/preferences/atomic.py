"""Contextual preferences over *atomic query elements* (Sec. 6 remark).

The paper adapts the Agrawal-Wimmers framework (scores on attribute
values) but notes that in the Koutrika-Ioannidis framework "user
preferences are stored as degrees of interest in atomic query elements
(such as individual selection or join conditions) instead of interests
in specific attribute values. Our approach can be generalized for this
framework as well, either by including contextual parameters in the
atomic query elements or by making the degree of interest for each
atomic query element depend on context."

This module implements the second generalisation: an
:class:`AtomicElement` is a named query building block (a selection
condition, here), a :class:`ContextualElementPreference` scopes its
degree of interest with a context descriptor, and an
:class:`ElementPreferenceStore` resolves, for a query context state,
the degree of every element - reusing the same ``covers``/distance
machinery as the value-level model. A personalised query then combines
the degrees of the elements each tuple satisfies.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.exceptions import PreferenceError
from repro.context.descriptor import ContextDescriptor
from repro.context.environment import ContextEnvironment
from repro.context.state import ContextState
from repro.preferences.combine import combine_max

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.db.relation import Relation
from repro.preferences.preference import AttributeClause
from repro.context.distances import state_distance

__all__ = [
    "AtomicElement",
    "ContextualElementPreference",
    "ElementPreferenceStore",
    "personalize",
]

Row = Mapping[str, object]


@dataclass(frozen=True)
class AtomicElement:
    """A named atomic query element: one selection condition.

    Attributes:
        name: Element identifier, e.g. ``"is_open_air"``.
        clause: The selection condition the element stands for.
    """

    name: str
    clause: AttributeClause

    def __post_init__(self) -> None:
        if not self.name:
            raise PreferenceError("atomic element name must be non-empty")

    def matches(self, row: Row) -> bool:
        """True iff the row satisfies the element's condition."""
        return self.clause.matches(row)


class ContextualElementPreference:
    """A context-scoped degree of interest in one atomic element."""

    __slots__ = ("_descriptor", "_element", "_degree")

    def __init__(
        self,
        descriptor: ContextDescriptor,
        element: AtomicElement,
        degree: float,
    ) -> None:
        if not isinstance(descriptor, ContextDescriptor):
            raise PreferenceError("descriptor must be a ContextDescriptor")
        degree = float(degree)
        if not 0.0 <= degree <= 1.0:
            raise PreferenceError(f"degree of interest must be in [0, 1], got {degree}")
        self._descriptor = descriptor
        self._element = element
        self._degree = degree

    @property
    def descriptor(self) -> ContextDescriptor:
        """The context descriptor scoping this degree."""
        return self._descriptor

    @property
    def element(self) -> AtomicElement:
        """The atomic element."""
        return self._element

    @property
    def degree(self) -> float:
        """The degree of interest in ``[0, 1]``."""
        return self._degree

    def __repr__(self) -> str:
        return (
            f"ContextualElementPreference({self._descriptor!r}, "
            f"{self._element.name!r}, {self._degree})"
        )


class ElementPreferenceStore:
    """Per-element contextual degrees with Def.-12-style resolution.

    For each element, the stored context states covering the query
    state are ranked by the metric and the minimum-distance state's
    degree applies (ties resolved by the maximum degree, a deterministic
    stand-in for "let the user decide").
    """

    def __init__(
        self,
        environment: ContextEnvironment,
        preferences: Iterable[ContextualElementPreference] = (),
    ) -> None:
        self._environment = environment
        # element name -> {state: degree}
        self._degrees: dict[str, dict[ContextState, float]] = {}
        self._elements: dict[str, AtomicElement] = {}
        for preference in preferences:
            self.add(preference)

    @property
    def environment(self) -> ContextEnvironment:
        """The context environment."""
        return self._environment

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[AtomicElement]:
        return iter(self._elements.values())

    def add(self, preference: ContextualElementPreference) -> None:
        """Insert one contextual degree (Def.-6-style conflicts raise)."""
        element = preference.element
        existing = self._elements.get(element.name)
        if existing is not None and existing != element:
            raise PreferenceError(
                f"element name {element.name!r} already bound to {existing!r}"
            )
        degrees = self._degrees.setdefault(element.name, {})
        for state in preference.descriptor.states(self._environment):
            recorded = degrees.get(state)
            if recorded is not None and recorded != preference.degree:
                raise PreferenceError(
                    f"conflicting degree for element {element.name!r} at "
                    f"state {state!r}: {recorded} vs {preference.degree}"
                )
            degrees[state] = preference.degree
        self._elements[element.name] = element

    def element(self, name: str) -> AtomicElement:
        """Look up an element by name."""
        try:
            return self._elements[name]
        except KeyError:
            raise PreferenceError(f"unknown atomic element {name!r}") from None

    def degree_of(
        self,
        name: str,
        state: ContextState,
        metric: str = "hierarchy",
    ) -> float | None:
        """The element's degree in ``state``, or ``None`` if no stored
        context covers it."""
        degrees = self._degrees.get(name)
        if not degrees:
            return None
        covering = [
            (stored, state_distance(state, stored, metric))
            for stored in degrees
            if stored.covers(state)
        ]
        if not covering:
            return None
        minimum = min(distance for _stored, distance in covering)
        return max(
            degrees[stored]
            for stored, distance in covering
            if distance == minimum
        )

    def degrees(
        self, state: ContextState, metric: str = "hierarchy"
    ) -> dict[str, float]:
        """Degrees of every element applicable in ``state``."""
        result = {}
        for name in self._elements:
            degree = self.degree_of(name, state, metric)
            if degree is not None:
                result[name] = degree
        return result


def personalize(
    relation: Relation,
    store: ElementPreferenceStore,
    state: ContextState,
    metric: str = "hierarchy",
    combine: Callable[[Sequence[float]], float] = combine_max,
) -> list[tuple[Row, float]]:
    """Rank a relation by the contextual degrees of the elements each
    tuple satisfies.

    Tuples satisfying no applicable element are omitted, like Rank_CS's
    unmatched tuples. Returns ``(row, score)`` pairs, best first (the
    relation's row order breaks ties).
    """
    degrees = store.degrees(state, metric)
    ranked: list[tuple[Row, float]] = []
    for row in relation:
        satisfied = [
            degree
            for name, degree in degrees.items()
            if store.element(name).matches(row)
        ]
        if satisfied:
            ranked.append((row, combine(satisfied)))
    ranked.sort(key=lambda pair: -pair[1])
    return ranked
