"""Score-combining functions.

When more than one preference applies to a tuple, the paper assumes
"appropriate combining preference functions exist" (Sec. 3.2, after
[1]) and Rank_CS's dedup step keeps "the max (equivalently, avg, min,
or some weighted average)". This module provides exactly that family.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.exceptions import PreferenceError

__all__ = ["combiner", "combine_max", "combine_min", "combine_avg", "weighted_average"]

Combiner = Callable[[Sequence[float]], float]


def _require_scores(scores: Sequence[float]) -> None:
    if not scores:
        raise PreferenceError("cannot combine an empty sequence of scores")


def combine_max(scores: Sequence[float]) -> float:
    """Keep the highest score (Rank_CS's default dedup policy)."""
    _require_scores(scores)
    return max(scores)


def combine_min(scores: Sequence[float]) -> float:
    """Keep the lowest score."""
    _require_scores(scores)
    return min(scores)


def combine_avg(scores: Sequence[float]) -> float:
    """Arithmetic mean of the scores."""
    _require_scores(scores)
    return sum(scores) / len(scores)


def weighted_average(weights: Sequence[float]) -> Combiner:
    """Build a weighted-average combiner.

    The returned function expects exactly ``len(weights)`` scores;
    weights are normalised so they need not sum to one.

    Example:
        >>> combine = weighted_average([3, 1])
        >>> combine([1.0, 0.0])
        0.75
    """
    weights = [float(weight) for weight in weights]
    if not weights or any(weight < 0 for weight in weights):
        raise PreferenceError("weights must be non-empty and non-negative")
    total = sum(weights)
    if total == 0:
        raise PreferenceError("weights must not all be zero")

    def combine(scores: Sequence[float]) -> float:
        if len(scores) != len(weights):
            raise PreferenceError(
                f"expected {len(weights)} scores, got {len(scores)}"
            )
        return sum(weight * score for weight, score in zip(weights, scores)) / total

    return combine


_BY_NAME: dict[str, Combiner] = {
    "max": combine_max,
    "min": combine_min,
    "avg": combine_avg,
}


def combiner(name: str) -> Combiner:
    """Look up a named combiner (``"max"``, ``"min"``, ``"avg"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise PreferenceError(
            f"unknown combiner {name!r}; expected one of {sorted(_BY_NAME)}"
        ) from None
