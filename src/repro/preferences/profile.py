"""Profiles: sets of non-conflicting contextual preferences (Def. 7)."""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.exceptions import ConflictError
from repro.context.environment import ContextEnvironment
from repro.context.state import ContextState
from repro.preferences.conflict import conflicts
from repro.preferences.preference import AttributeClause, ContextualPreference

__all__ = ["Profile"]


class Profile:
    """A profile ``P``: non-conflicting contextual preferences (Def. 7).

    Conflicts (Def. 6) are detected on :meth:`add`; the offending
    preference is rejected with :class:`~repro.exceptions.ConflictError`
    and the profile is left unchanged - mirroring the paper's
    "the path is not inserted and the user is notified".

    The profile keeps an index from context states to the preferences
    whose descriptors produce them, which makes conflict detection a
    per-state dictionary lookup rather than a pairwise scan.
    """

    def __init__(
        self,
        environment: ContextEnvironment,
        preferences: Iterable[ContextualPreference] = (),
    ) -> None:
        self._environment = environment
        self._preferences: list[ContextualPreference] = []
        self._seen: set[ContextualPreference] = set()
        # (state, clause) -> score, for O(1) conflict checks.
        self._scores: dict[tuple[ContextState, AttributeClause], float] = {}
        for preference in preferences:
            self.add(preference)

    @property
    def environment(self) -> ContextEnvironment:
        """The context environment the profile is expressed against."""
        return self._environment

    @property
    def preferences(self) -> tuple[ContextualPreference, ...]:
        """The stored preferences, in insertion order."""
        return tuple(self._preferences)

    def __len__(self) -> int:
        return len(self._preferences)

    def __iter__(self) -> Iterator[ContextualPreference]:
        return iter(self._preferences)

    def __contains__(self, preference: object) -> bool:
        return preference in self._seen

    def add(self, preference: ContextualPreference) -> None:
        """Insert a preference, rejecting conflicts (Def. 6).

        Re-adding an identical preference is a no-op. A preference whose
        (state, clause) pair is already present with a *different* score
        raises :class:`ConflictError` and leaves the profile unchanged.
        """
        states = preference.descriptor.states(self._environment)
        for state in states:
            key = (state, preference.clause)
            existing = self._scores.get(key)
            if existing is not None and existing != preference.score:
                raise ConflictError(
                    f"preference {preference!r} conflicts at state {state!r}: "
                    f"score {existing} already recorded for clause "
                    f"{preference.clause!r}"
                )
        if preference in self._seen:
            return
        for state in states:
            self._scores[(state, preference.clause)] = preference.score
        self._preferences.append(preference)
        self._seen.add(preference)

    def remove(self, preference: ContextualPreference) -> None:
        """Remove a preference previously added.

        Raises:
            ValueError: If the preference is not in the profile.
        """
        self._preferences.remove(preference)
        self._seen.discard(preference)
        self._rebuild_scores()

    def replace(
        self, old: ContextualPreference, new: ContextualPreference
    ) -> None:
        """Atomically swap ``old`` for ``new`` (used by profile editing).

        If inserting ``new`` would conflict, the profile is restored and
        the :class:`ConflictError` re-raised.
        """
        self.remove(old)
        try:
            self.add(new)
        except ConflictError:
            self.add(old)
            raise

    def would_conflict(self, preference: ContextualPreference) -> bool:
        """True iff adding ``preference`` would raise a conflict."""
        for state in preference.descriptor.states(self._environment):
            existing = self._scores.get((state, preference.clause))
            if existing is not None and existing != preference.score:
                return True
        return False

    def conflicts_with(
        self, preference: ContextualPreference
    ) -> list[ContextualPreference]:
        """The stored preferences that conflict with ``preference``."""
        return [
            stored
            for stored in self._preferences
            if conflicts(stored, preference, self._environment)
        ]

    def states(self) -> tuple[ContextState, ...]:
        """All distinct context states produced by the profile's
        descriptors, in first-seen order."""
        seen: dict[ContextState, None] = {}
        for preference in self._preferences:
            for state in preference.descriptor.states(self._environment):
                seen.setdefault(state, None)
        return tuple(seen)

    def entries(self) -> Iterator[tuple[ContextState, AttributeClause, float]]:
        """Yield the flattened ``(state, clause, score)`` records.

        This is the sequential-storage view of the profile used by the
        baseline of Sec. 4.4 and by the profile tree's bulk loader.
        """
        for preference in self._preferences:
            for state in preference.descriptor.states(self._environment):
                yield state, preference.clause, preference.score

    def _rebuild_scores(self) -> None:
        self._scores.clear()
        for preference in self._preferences:
            for state in preference.descriptor.states(self._environment):
                self._scores[(state, preference.clause)] = preference.score

    def __repr__(self) -> str:
        return (
            f"Profile({len(self._preferences)} preferences over "
            f"{list(self._environment.names)})"
        )
