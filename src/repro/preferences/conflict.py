"""Conflict detection between contextual preferences (Def. 6).

Two preferences conflict when their context-state sets intersect, their
attribute clauses coincide, and their interest scores differ. The
paper detects conflicts at profile-entry time; :class:`~repro.
preferences.profile.Profile` and the profile tree both call into this
module.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.context.environment import ContextEnvironment
from repro.preferences.preference import ContextualPreference

__all__ = ["conflicts", "find_conflicts"]


def conflicts(
    first: ContextualPreference,
    second: ContextualPreference,
    environment: ContextEnvironment,
) -> bool:
    """Def. 6: do the two preferences conflict?

    True iff (1) their contexts share at least one state, (2) their
    attribute clauses are identical, and (3) their scores differ.
    """
    if first.clause != second.clause:
        return False
    if first.score == second.score:
        return False
    first_states = set(first.descriptor.states(environment))
    return any(
        state in first_states for state in second.descriptor.states(environment)
    )


def find_conflicts(
    preferences: Iterable[ContextualPreference],
    environment: ContextEnvironment,
) -> list[tuple[ContextualPreference, ContextualPreference]]:
    """All conflicting pairs within ``preferences``.

    The check is grouped by attribute clause so only preferences about
    the same clause are compared pairwise.
    """
    by_clause: dict[object, list[ContextualPreference]] = {}
    for preference in preferences:
        by_clause.setdefault(preference.clause, []).append(preference)

    pairs: list[tuple[ContextualPreference, ContextualPreference]] = []
    for group in by_clause.values():
        states = [set(preference.descriptor.states(environment)) for preference in group]
        for i, first in enumerate(group):
            for j in range(i + 1, len(group)):
                second = group[j]
                if first.score != second.score and states[i] & states[j]:
                    pairs.append((first, second))
    return pairs
