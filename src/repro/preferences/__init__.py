"""Preference model: contextual preferences, conflicts, profiles (Sec. 3.2)."""

from repro.preferences.combine import (
    combine_avg,
    combine_max,
    combine_min,
    combiner,
    weighted_average,
)
from repro.preferences.atomic import (
    AtomicElement,
    ContextualElementPreference,
    ElementPreferenceStore,
    personalize,
)
from repro.preferences.conflict import conflicts, find_conflicts
from repro.preferences.preference import AttributeClause, ContextualPreference
from repro.preferences.profile import Profile
from repro.preferences.qualitative import (
    PreferenceRelation,
    QualitativePreference,
    QualitativeProfile,
    rank_by_strata,
    winnow,
)
from repro.preferences.repository import PreferenceRepository

__all__ = [
    "AtomicElement",
    "AttributeClause",
    "ContextualElementPreference",
    "ContextualPreference",
    "ElementPreferenceStore",
    "PreferenceRelation",
    "PreferenceRepository",
    "Profile",
    "QualitativePreference",
    "QualitativeProfile",
    "combine_avg",
    "combine_max",
    "combine_min",
    "combiner",
    "conflicts",
    "find_conflicts",
    "personalize",
    "rank_by_strata",
    "weighted_average",
    "winnow",
]
