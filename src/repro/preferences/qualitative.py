"""Contextual *qualitative* preferences (the Sec. 3.2 extension).

The paper adopts a quantitative (scoring) model but notes that "our
context model can be used for extending both quantitative and
qualitative approaches", the qualitative one (Chomicki [4]) specifying
binary preference relations between tuples directly. This module
realises that extension: a :class:`QualitativePreference` scopes a
*better-than* relation between attribute clauses with a context
descriptor; resolution reuses the same ``covers``/distance machinery,
and ranking uses the standard *winnow* (best-matches-only) operator,
iterated to produce strata.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass

from repro.exceptions import PreferenceError
from repro.context.descriptor import ContextDescriptor
from repro.context.environment import ContextEnvironment
from repro.context.state import ContextState
from repro.preferences.preference import AttributeClause
from repro.context.distances import state_distance

__all__ = [
    "PreferenceRelation",
    "QualitativePreference",
    "QualitativeProfile",
    "winnow",
    "rank_by_strata",
]

Row = Mapping[str, object]


@dataclass(frozen=True)
class PreferenceRelation:
    """``better > worse``: tuples matching ``better`` are preferred to
    tuples matching ``worse``."""

    better: AttributeClause
    worse: AttributeClause

    def __post_init__(self) -> None:
        if self.better == self.worse:
            raise PreferenceError("a preference relation needs two distinct sides")

    def dominates(self, first: Row, second: Row) -> bool:
        """True iff this relation makes ``first`` dominate ``second``."""
        return self.better.matches(first) and self.worse.matches(second)

    def __repr__(self) -> str:
        return f"({self.better!r} > {self.worse!r})"


class QualitativePreference:
    """A preference relation scoped by a context descriptor.

    Example:
        >>> QualitativePreference(
        ...     ContextDescriptor.from_mapping({"accompanying_people": "family"}),
        ...     PreferenceRelation(AttributeClause("type", "museum"),
        ...                        AttributeClause("type", "brewery")),
        ... )
    """

    __slots__ = ("_descriptor", "_relation")

    def __init__(
        self, descriptor: ContextDescriptor, relation: PreferenceRelation
    ) -> None:
        if not isinstance(descriptor, ContextDescriptor):
            raise PreferenceError("descriptor must be a ContextDescriptor")
        if not isinstance(relation, PreferenceRelation):
            raise PreferenceError("relation must be a PreferenceRelation")
        self._descriptor = descriptor
        self._relation = relation

    @property
    def descriptor(self) -> ContextDescriptor:
        """The context descriptor scoping the relation."""
        return self._descriptor

    @property
    def relation(self) -> PreferenceRelation:
        """The better-than relation."""
        return self._relation

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QualitativePreference):
            return NotImplemented
        return (
            self._descriptor == other._descriptor
            and self._relation == other._relation
        )

    def __hash__(self) -> int:
        return hash((self._descriptor, self._relation))

    def __repr__(self) -> str:
        return f"QualitativePreference({self._descriptor!r}, {self._relation!r})"


class QualitativeProfile:
    """A set of contextual qualitative preferences with resolution.

    Resolution mirrors the quantitative side (Def. 12): the stored
    context states covering the query state are found, and the
    relations attached to the minimum-distance states (under the chosen
    metric; ties are unioned) apply.
    """

    def __init__(
        self,
        environment: ContextEnvironment,
        preferences: Iterable[QualitativePreference] = (),
    ) -> None:
        self._environment = environment
        self._preferences: list[QualitativePreference] = []
        self._by_state: dict[ContextState, list[PreferenceRelation]] = {}
        for preference in preferences:
            self.add(preference)

    @property
    def environment(self) -> ContextEnvironment:
        """The context environment."""
        return self._environment

    def __len__(self) -> int:
        return len(self._preferences)

    def __iter__(self) -> Iterator[QualitativePreference]:
        return iter(self._preferences)

    def add(self, preference: QualitativePreference) -> None:
        """Insert a preference; the opposite relation in an overlapping
        context is a conflict (the qualitative analogue of Def. 6)."""
        states = preference.descriptor.states(self._environment)
        opposite = PreferenceRelation(
            preference.relation.worse, preference.relation.better
        )
        for state in states:
            if opposite in self._by_state.get(state, ()):
                raise PreferenceError(
                    f"conflicting relation at state {state!r}: "
                    f"{opposite!r} already recorded"
                )
        if preference in self._preferences:
            return
        for state in states:
            relations = self._by_state.setdefault(state, [])
            if preference.relation not in relations:
                relations.append(preference.relation)
        self._preferences.append(preference)

    def states(self) -> tuple[ContextState, ...]:
        """All stored context states."""
        return tuple(self._by_state)

    def applicable(
        self, state: ContextState, metric: str = "hierarchy"
    ) -> list[PreferenceRelation]:
        """The relations that apply in ``state``.

        All stored states covering ``state`` are ranked by the metric;
        relations of every minimum-distance state are returned (union
        on ties), duplicates removed.
        """
        covering = [
            (stored, state_distance(state, stored, metric))
            for stored in self._by_state
            if stored.covers(state)
        ]
        if not covering:
            return []
        minimum = min(distance for _s, distance in covering)
        relations: dict[PreferenceRelation, None] = {}
        for stored, distance in covering:
            if distance == minimum:
                for relation in self._by_state[stored]:
                    relations.setdefault(relation, None)
        return list(relations)


def winnow(rows: Sequence[Row], relations: Sequence[PreferenceRelation]) -> list[Row]:
    """The winnow operator: rows not dominated by any other row.

    ``row1`` dominates ``row2`` iff some relation prefers ``row1``'s
    side and disfavours ``row2``'s, and no relation does the reverse.
    """
    def dominates(first: Row, second: Row) -> bool:
        forward = any(relation.dominates(first, second) for relation in relations)
        backward = any(relation.dominates(second, first) for relation in relations)
        return forward and not backward

    return [
        row
        for row in rows
        if not any(dominates(other, row) for other in rows if other is not row)
    ]


def rank_by_strata(
    rows: Sequence[Row], relations: Sequence[PreferenceRelation]
) -> list[list[Row]]:
    """Iterated winnow: stratify rows into preference levels.

    Stratum 0 holds the undominated rows, stratum 1 the rows undominated
    once stratum 0 is removed, and so on - the standard ranking induced
    by a qualitative preference relation.
    """
    remaining = list(rows)
    strata: list[list[Row]] = []
    while remaining:
        best = winnow(remaining, relations)
        if not best:  # cyclic relations: stop rather than loop forever
            strata.append(remaining)
            break
        strata.append(best)
        best_ids = {id(row) for row in best}
        remaining = [row for row in remaining if id(row) not in best_ids]
    return strata
