"""A preference repository: profile + index, kept consistent.

The paper's system is a *preference database*: users insert, update and
delete contextual preferences (the usability study counts exactly these
modifications), queries resolve against the profile tree, and the
profile survives across sessions. This facade owns both the
:class:`Profile` (the logical set, Def. 7) and its
:class:`ProfileTree` index (Sec. 3.3), guaranteeing they never diverge,
and round-trips through the :mod:`repro.io` JSON format.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import TYPE_CHECKING

from repro.exceptions import PreferenceError
from repro.context.environment import ContextEnvironment
from repro.preferences.preference import ContextualPreference
from repro.preferences.profile import Profile

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps layering clean
    from repro.tree.profile_tree import ProfileTree

__all__ = ["PreferenceRepository"]


class PreferenceRepository:
    """Owns a profile and its tree index; edits hit both atomically.

    Args:
        environment: The context environment.
        preferences: Initial preferences (conflicts raise, Def. 6).
        ordering: Parameter-to-level ordering for the index; defaults to
            the size-optimal one (large domains low, Sec. 3.3).

    Example:
        >>> repo = PreferenceRepository(env)
        >>> repo.add(preference)
        >>> repo.tree.exact_lookup(state)
        {...}
    """

    def __init__(
        self,
        environment: ContextEnvironment,
        preferences: Iterable[ContextualPreference] = (),
        ordering: Sequence[str] | None = None,
    ) -> None:
        # Deferred: the tree index lives one layer *above* preferences
        # (tree imports preferences), so the facade resolves it at call
        # time - the same pattern as the io/dsl round-trips below.
        from repro.tree.ordering import optimal_ordering
        from repro.tree.profile_tree import ProfileTree

        self._environment = environment
        self._ordering = tuple(ordering) if ordering else optimal_ordering(environment)
        self._profile = Profile(environment)
        self._tree: ProfileTree = ProfileTree(environment, self._ordering)
        for preference in preferences:
            self.add(preference)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def environment(self) -> ContextEnvironment:
        """The context environment."""
        return self._environment

    @property
    def profile(self) -> Profile:
        """The logical profile (do not mutate it directly)."""
        return self._profile

    @property
    def tree(self) -> ProfileTree:
        """The profile-tree index (rebuilt/updated on every edit)."""
        return self._tree

    @property
    def ordering(self) -> tuple[str, ...]:
        """The index's parameter-to-level ordering."""
        return self._ordering

    def __len__(self) -> int:
        return len(self._profile)

    def __iter__(self) -> Iterator[ContextualPreference]:
        return iter(self._profile)

    def __contains__(self, preference: object) -> bool:
        return preference in self._profile

    # ------------------------------------------------------------------
    # Edits (the usability study's "modifications")
    # ------------------------------------------------------------------
    def add(self, preference: ContextualPreference) -> None:
        """Insert a preference into profile and index.

        Conflicts (Def. 6) raise and leave both untouched.
        """
        self._profile.add(preference)
        try:
            self._tree.insert(preference)
        except Exception:  # pragma: no cover - insert cannot fail after add
            self._profile.remove(preference)
            raise

    def remove(self, preference: ContextualPreference) -> None:
        """Delete a preference from profile and index.

        Raises:
            PreferenceError: If the preference is not stored.
        """
        if preference not in self._profile:
            raise PreferenceError(f"preference not in repository: {preference!r}")
        self._profile.remove(preference)
        self._tree.remove(preference)

    def update_score(
        self, preference: ContextualPreference, new_score: float
    ) -> ContextualPreference:
        """Change a stored preference's interest score.

        Returns the replacement preference. Rolls back on conflict.
        """
        if preference not in self._profile:
            raise PreferenceError(f"preference not in repository: {preference!r}")
        replacement = ContextualPreference(
            preference.descriptor, preference.clause, new_score
        )
        self.remove(preference)
        try:
            self.add(replacement)
        except Exception:
            self.add(preference)
            raise
        return replacement

    def reindex(self, ordering: Sequence[str] | None = None) -> None:
        """Rebuild the tree, optionally under a new ordering.

        Useful after bulk edits or to adopt a better ordering once the
        profile's value distribution is known (Sec. 3.3 / Fig. 6 right).
        """
        from repro.tree.ordering import optimal_ordering
        from repro.tree.profile_tree import ProfileTree

        self._ordering = (
            tuple(ordering) if ordering else optimal_ordering(self._environment)
        )
        self._tree = ProfileTree.from_profile(self._profile, self._ordering)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_json(self, **json_kwargs: object) -> str:
        """Serialise the repository's profile to JSON."""
        from repro.io import dumps

        return dumps(self._profile, **json_kwargs)

    @classmethod
    def from_json(
        cls, text: str, ordering: Sequence[str] | None = None
    ) -> "PreferenceRepository":
        """Rebuild a repository from :meth:`to_json` output."""
        from repro.io import loads

        profile = loads(text)
        if not isinstance(profile, Profile):
            raise PreferenceError("JSON payload does not contain a profile")
        return cls(profile.environment, profile, ordering)

    def to_dsl(self) -> str:
        """Render the profile as a DSL script (one ``PREFER`` per line)."""
        from repro.dsl import render_profile

        return render_profile(self._profile)

    @classmethod
    def from_dsl(
        cls,
        text: str,
        environment: ContextEnvironment,
        ordering: Sequence[str] | None = None,
    ) -> "PreferenceRepository":
        """Build a repository from a DSL script (see :mod:`repro.dsl`)."""
        from repro.dsl import parse_profile

        profile = parse_profile(text, environment)
        return cls(environment, profile, ordering)

    def __repr__(self) -> str:
        return (
            f"PreferenceRepository({len(self._profile)} preferences, "
            f"order={list(self._ordering)})"
        )
