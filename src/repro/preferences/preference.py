"""Contextual preferences (Def. 5).

A contextual preference couples a context descriptor with an
*attribute clause* over non-context attributes and an interest score in
``[0, 1]``. Def. 5 allows clauses with any comparison operator from
``{=, <, >, <=, >=, !=}``; the paper's experiments (and ours) use
single-attribute equality clauses, but the full operator set is
implemented and usable.
"""

from __future__ import annotations

import operator
from collections.abc import Callable, Mapping

from repro.exceptions import PreferenceError
from repro.context.descriptor import ContextDescriptor

__all__ = ["AttributeClause", "ContextualPreference"]

_OPERATORS: dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    ">": operator.gt,
    "<=": operator.le,
    ">=": operator.ge,
}


class AttributeClause:
    """One condition ``A theta a`` on a non-context attribute.

    Args:
        attribute: Attribute name, e.g. ``"type"``.
        value: Comparison constant.
        op: One of ``= != < > <= >=`` (default ``=``).

    Example:
        >>> clause = AttributeClause("type", "brewery")
        >>> clause.matches({"type": "brewery", "name": "Craft"})
        True
    """

    __slots__ = ("_attribute", "_op", "_value")

    def __init__(self, attribute: str, value: object, op: str = "=") -> None:
        if not attribute:
            raise PreferenceError("attribute name must be non-empty")
        if op not in _OPERATORS:
            raise PreferenceError(
                f"unknown operator {op!r}; expected one of {sorted(_OPERATORS)}"
            )
        self._attribute = attribute
        self._op = op
        self._value = value

    @property
    def attribute(self) -> str:
        """The attribute name."""
        return self._attribute

    @property
    def op(self) -> str:
        """The comparison operator."""
        return self._op

    @property
    def value(self) -> object:
        """The comparison constant."""
        return self._value

    def matches(self, row: Mapping[str, object]) -> bool:
        """Evaluate the clause against a tuple (mapping of attributes).

        A missing attribute never matches; incomparable values (e.g. a
        string ordered against an int) never match either.
        """
        if self._attribute not in row:
            return False
        try:
            return _OPERATORS[self._op](row[self._attribute], self._value)
        except TypeError:
            return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttributeClause):
            return NotImplemented
        return (
            self._attribute == other._attribute
            and self._op == other._op
            and self._value == other._value
        )

    def __hash__(self) -> int:
        return hash((self._attribute, self._op, self._value))

    def __repr__(self) -> str:
        return f"({self._attribute} {self._op} {self._value!r})"


class ContextualPreference:
    """A contextual preference ``(cod, attributes clause, score)`` (Def. 5).

    Example:
        >>> pref = ContextualPreference(
        ...     ContextDescriptor.from_mapping({"location": "Plaka"}),
        ...     AttributeClause("name", "Acropolis"),
        ...     0.8,
        ... )
    """

    __slots__ = ("_descriptor", "_clause", "_score")

    def __init__(
        self,
        descriptor: ContextDescriptor,
        clause: AttributeClause,
        score: float,
    ) -> None:
        if not isinstance(descriptor, ContextDescriptor):
            raise PreferenceError("descriptor must be a ContextDescriptor")
        if not isinstance(clause, AttributeClause):
            raise PreferenceError("clause must be an AttributeClause")
        score = float(score)
        if not 0.0 <= score <= 1.0:
            raise PreferenceError(f"interest score must be in [0, 1], got {score}")
        self._descriptor = descriptor
        self._clause = clause
        self._score = score

    @property
    def descriptor(self) -> ContextDescriptor:
        """The context descriptor scoping this preference."""
        return self._descriptor

    @property
    def clause(self) -> AttributeClause:
        """The attribute clause the score applies to."""
        return self._clause

    @property
    def score(self) -> float:
        """The degree of interest in ``[0, 1]``."""
        return self._score

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ContextualPreference):
            return NotImplemented
        return (
            self._descriptor == other._descriptor
            and self._clause == other._clause
            and self._score == other._score
        )

    def __hash__(self) -> int:
        return hash((self._descriptor, self._clause, self._score))

    def __repr__(self) -> str:
        return (
            f"ContextualPreference({self._descriptor!r}, {self._clause!r}, "
            f"{self._score})"
        )
