"""Backward-compatible re-export of :mod:`repro.context.distances`.

The distance metrics (Defs. 13-17) are pure functions over context
states and hierarchies, so they live in the ``context`` layer; the
``preferences`` package (one layer up) uses them without reaching into
``resolution`` (three layers up), which the layering checker in
:mod:`repro.analysis` would flag. This shim keeps the historical
``repro.resolution.distances`` import path working.
"""

from repro.context.distances import (
    METRICS,
    hierarchy_state_distance,
    hierarchy_value_distance,
    jaccard_state_distance,
    jaccard_value_distance,
    level_distance,
    state_distance,
)

__all__ = [
    "METRICS",
    "level_distance",
    "hierarchy_value_distance",
    "hierarchy_state_distance",
    "jaccard_value_distance",
    "jaccard_state_distance",
    "state_distance",
]
