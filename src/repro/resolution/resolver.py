"""Context resolution (Defs. 10-12 and Sec. 4.4).

Resolution answers: *given a query's context state, which stored
preferences apply?* Candidates are the stored states that cover the
query state (found with ``Search_CS``); the best candidate minimises
the chosen distance metric, which by Properties 2-3 is always one of
the minimal candidates under the ``covers`` partial order - i.e. a
*match* in the sense of Def. 12. Ties between incomparable candidates
are surfaced to the caller, mirroring the paper's "one [way] is to let
the user decide".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ContextError
from repro.context.descriptor import ContextDescriptor, ExtendedContextDescriptor
from repro.context.state import ContextState
from repro.obs.metrics import get_registry
from repro.obs.trace import span
from repro.context.distances import METRICS
from repro.resolution.search import SearchResult, exact_search, search_cs
from repro.tree.counters import AccessCounter
from repro.tree.profile_tree import ProfileTree

__all__ = ["Resolution", "ContextResolver", "minimal_covering"]


def minimal_covering(candidates: list[SearchResult]) -> list[SearchResult]:
    """The candidates minimal under the ``covers`` partial order.

    A candidate is kept iff no other candidate is strictly covered by
    it - this is the literal Def. 12 condition (ii), used both by the
    resolver's sanity checks and by the property-based tests.
    """
    minimal = []
    for candidate in candidates:
        dominated = any(
            other.state != candidate.state
            and candidate.state.covers(other.state)
            for other in candidates
        )
        if not dominated:
            minimal.append(candidate)
    return minimal


@dataclass
class Resolution:
    """Outcome of resolving one query context state.

    Attributes:
        query_state: The state being resolved.
        metric: The distance metric used for ranking.
        candidates: Every stored state covering the query state, sorted
            by the metric (then hierarchy distance as tiebreak).
        best: The minimal-distance candidates (more than one on ties).
    """

    query_state: ContextState
    metric: str
    candidates: list[SearchResult] = field(default_factory=list)
    best: list[SearchResult] = field(default_factory=list)

    @property
    def matched(self) -> bool:
        """True iff at least one stored state covers the query state."""
        return bool(self.candidates)

    @property
    def is_exact(self) -> bool:
        """True iff the best candidate equals the query state."""
        return bool(self.best) and self.best[0].is_exact()

    def chosen(self) -> SearchResult | None:
        """The single chosen candidate (first of ``best``), if any."""
        return self.best[0] if self.best else None


class ContextResolver:
    """Facade for context resolution over a profile tree.

    Args:
        tree: The profile tree to search.
        metric: ``"hierarchy"`` (default) or ``"jaccard"``.

    Example:
        >>> resolver = ContextResolver(tree, metric="jaccard")
        >>> resolution = resolver.resolve_state(state)
        >>> resolution.chosen().entries
        {(name = 'Acropolis'): 0.8}
    """

    def __init__(self, tree: ProfileTree, metric: str = "hierarchy") -> None:
        if metric not in METRICS:
            raise ContextError(f"unknown metric {metric!r}; expected one of {METRICS}")
        self._tree = tree
        self._metric = metric

    @property
    def tree(self) -> ProfileTree:
        """The underlying profile tree."""
        return self._tree

    @property
    def metric(self) -> str:
        """The active distance metric."""
        return self._metric

    def resolve_state(
        self,
        state: ContextState,
        counter: AccessCounter | None = None,
        exact_only: bool = False,
    ) -> Resolution:
        """Resolve one query context state.

        With ``exact_only`` the search degrades to the single
        root-to-leaf traversal of the exact-match fast path.
        """
        with span("search_cs"):
            return self._resolve_state(state, counter, exact_only)

    def _resolve_state(
        self,
        state: ContextState,
        counter: AccessCounter | None,
        exact_only: bool,
    ) -> Resolution:
        registry = get_registry()
        if registry.enabled:
            registry.inc("resolver.states_resolved")
        if exact_only:
            result = exact_search(self._tree, state, counter)
            candidates = [result] if result is not None else []
        else:
            candidates = search_cs(self._tree, state, counter)
            candidates.sort(
                key=lambda result: (
                    result.distance(self._metric),
                    result.hierarchy_distance,
                )
            )
        if not candidates:
            if registry.enabled:
                registry.inc("resolver.unmatched")
            return Resolution(query_state=state, metric=self._metric)
        minimum = candidates[0].distance(self._metric)
        best = [
            candidate
            for candidate in candidates
            if candidate.distance(self._metric) == minimum
        ]
        return Resolution(
            query_state=state,
            metric=self._metric,
            candidates=candidates,
            best=best,
        )

    def resolve_descriptor(
        self,
        descriptor: ContextDescriptor | ExtendedContextDescriptor,
        counter: AccessCounter | None = None,
        exact_only: bool = False,
    ) -> list[Resolution]:
        """Resolve every context state produced by a (possibly extended)
        context descriptor, in state order."""
        states = descriptor.states(self._tree.environment)
        return [
            self.resolve_state(state, counter, exact_only) for state in states
        ]
