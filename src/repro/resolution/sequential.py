"""Sequential-scan baseline for context resolution (Sec. 4.4).

The paper compares the profile tree against storing the flattened
``(state, clause, score)`` records in a flat list. Exact-match
resolution scans until the matching state is found; covering
resolution must scan the whole store. Cell accesses are charged per
context-value comparison, with early exit within a record as soon as a
parameter rules it out.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.context.state import ContextState
from repro.preferences.preference import AttributeClause
from repro.preferences.profile import Profile
from repro.context.distances import (
    hierarchy_value_distance,
    jaccard_value_distance,
)
from repro.resolution.search import SearchResult
from repro.tree.counters import AccessCounter

__all__ = ["SequentialStore"]


class SequentialStore:
    """Flat storage of a profile's ``(state, clause, score)`` records.

    Example:
        >>> store = SequentialStore.from_profile(profile)
        >>> counter = AccessCounter()
        >>> store.exact_scan(query_state, counter)
    """

    def __init__(
        self,
        records: Sequence[tuple[ContextState, AttributeClause, float]],
    ) -> None:
        self._records = list(records)

    @classmethod
    def from_profile(cls, profile: Profile) -> "SequentialStore":
        """Flatten a profile into its sequential records."""
        return cls(list(profile.entries()))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[tuple[ContextState, AttributeClause, float]]:
        return iter(self._records)

    def exact_scan(
        self,
        state: ContextState,
        counter: AccessCounter | None = None,
    ) -> SearchResult | None:
        """Scan until the first record whose state equals ``state``.

        Each examined context-value cell is charged to ``counter``;
        within one record the comparison stops at the first mismatch.
        Mirrors the paper: "the profile is scanned until the matching
        state is found".
        """
        query = state.values
        for stored, clause, score in self._records:
            matched = True
            for mine, theirs in zip(query, stored.values):
                if counter is not None:
                    counter.add(1)
                if mine != theirs:
                    matched = False
                    break
            if matched:
                return SearchResult(
                    state=stored,
                    entries={clause: score},
                    hierarchy_distance=0,
                    jaccard_distance=0.0,
                )
        return None

    def cover_scan(
        self,
        state: ContextState,
        counter: AccessCounter | None = None,
    ) -> list[SearchResult]:
        """All records whose state covers ``state``, with distances.

        The whole store is scanned (non-exact matches cannot stop
        early); within one record the per-parameter cover check stops at
        the first parameter that rules the record out. Records sharing a
        covering state are merged into one result (the tree's leaf view).
        """
        environment = state.environment
        merged: dict[ContextState, SearchResult] = {}
        for stored, clause, score in self._records:
            hierarchy_distance = 0
            jaccard_distance = 0.0
            covered = True
            for parameter, mine, theirs in zip(
                environment, state.values, stored.values
            ):
                if counter is not None:
                    counter.add(1)
                hierarchy = parameter.hierarchy
                if not hierarchy.covers_value(theirs, mine):
                    covered = False
                    break
                hierarchy_distance += hierarchy_value_distance(hierarchy, theirs, mine)
                jaccard_distance += jaccard_value_distance(hierarchy, theirs, mine)
            if not covered:
                continue
            existing = merged.get(stored)
            if existing is None:
                merged[stored] = SearchResult(
                    state=stored,
                    entries={clause: score},
                    hierarchy_distance=hierarchy_distance,
                    jaccard_distance=jaccard_distance,
                )
            else:
                existing.entries[clause] = score
        results = list(merged.values())
        results.sort(key=lambda result: result.hierarchy_distance)
        return results
