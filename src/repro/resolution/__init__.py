"""Context resolution: distances, Search_CS, baselines, resolver (Sec. 4)."""

from repro.resolution.distances import (
    METRICS,
    hierarchy_state_distance,
    hierarchy_value_distance,
    jaccard_state_distance,
    jaccard_value_distance,
    level_distance,
    state_distance,
)
from repro.resolution.hash_index import StateHashIndex
from repro.resolution.resolver import ContextResolver, Resolution, minimal_covering
from repro.resolution.search import SearchResult, exact_search, search_cs
from repro.resolution.sequential import SequentialStore

__all__ = [
    "METRICS",
    "ContextResolver",
    "Resolution",
    "SearchResult",
    "SequentialStore",
    "StateHashIndex",
    "exact_search",
    "hierarchy_state_distance",
    "hierarchy_value_distance",
    "jaccard_state_distance",
    "jaccard_value_distance",
    "level_distance",
    "minimal_covering",
    "search_cs",
    "state_distance",
]
