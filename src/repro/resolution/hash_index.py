"""A hash-index alternative to the profile tree.

The paper compares the profile tree only against a sequential scan. A
natural third design is a hash map from context states to payloads:
exact-match resolution becomes a single probe, and covering resolution
probes every *generalisation* of the query state (the product of the
per-parameter ancestor chains - e.g. 2x3x4 = 24 probes for the running
example). This module implements that index so the trade-off can be
measured (see ``benchmarks/bench_ablations.py``):

* exact match: hash O(1) beats the tree's root-to-leaf scan;
* covering: the hash probes ``prod(chain lengths)`` states regardless of
  what is stored, while the tree only walks cells that exist - so the
  tree wins when profiles are sparse in the generalisation lattice, and
  the hash when hierarchies are shallow;
* the hash cannot enumerate by prefix, so it offers no analogue of the
  tree's ordering/size tuning.

Cell accounting: every probe charges one cell (the bucket inspected),
making the numbers comparable with the tree's cell accesses.
"""

from __future__ import annotations

from repro.context.state import ContextState
from repro.exceptions import ConflictError
from repro.preferences.preference import AttributeClause, ContextualPreference
from repro.preferences.profile import Profile
from repro.context.distances import (
    hierarchy_state_distance,
    jaccard_state_distance,
)
from repro.resolution.search import SearchResult
from repro.tree.counters import AccessCounter

__all__ = ["StateHashIndex"]


class StateHashIndex:
    """Hash map from context states to ``{clause: score}`` payloads.

    Example:
        >>> index = StateHashIndex.from_profile(profile)
        >>> index.exact_lookup(state)
        {(type = 'brewery'): 0.9}
    """

    def __init__(self, environment) -> None:
        self._environment = environment
        self._payloads: dict[ContextState, dict[AttributeClause, float]] = {}

    @classmethod
    def from_profile(cls, profile: Profile) -> "StateHashIndex":
        """Index every ``(state, clause, score)`` record of a profile."""
        index = cls(profile.environment)
        for preference in profile:
            index.insert(preference)
        return index

    @property
    def environment(self):
        """The context environment."""
        return self._environment

    def __len__(self) -> int:
        return len(self._payloads)

    def insert(self, preference: ContextualPreference) -> None:
        """Insert a preference, with Def. 6 conflict detection."""
        states = preference.descriptor.states(self._environment)
        for state in states:
            existing = self._payloads.get(state, {}).get(preference.clause)
            if existing is not None and existing != preference.score:
                raise ConflictError(
                    f"conflict at state {state!r}: clause {preference.clause!r} "
                    f"already has score {existing}"
                )
        for state in states:
            self._payloads.setdefault(state, {})[preference.clause] = preference.score

    def exact_lookup(
        self, state: ContextState, counter: AccessCounter | None = None
    ) -> dict[AttributeClause, float] | None:
        """One probe: the payloads at exactly ``state``."""
        if counter is not None:
            counter.add(1)
        payload = self._payloads.get(state)
        return dict(payload) if payload is not None else None

    def cover_lookup(
        self, state: ContextState, counter: AccessCounter | None = None
    ) -> list[SearchResult]:
        """Probe every generalisation of ``state``; return the stored ones.

        The number of probes is the product of the per-parameter
        ancestor-chain lengths, independent of the profile's size.
        Results carry both distances, like ``Search_CS``.
        """
        results = []
        for candidate in state.generalisations():
            if counter is not None:
                counter.add(1)
            payload = self._payloads.get(candidate)
            if payload is None:
                continue
            results.append(
                SearchResult(
                    state=candidate,
                    entries=dict(payload),
                    hierarchy_distance=hierarchy_state_distance(state, candidate),
                    jaccard_distance=jaccard_state_distance(state, candidate),
                )
            )
        results.sort(key=lambda result: result.hierarchy_distance)
        return results
