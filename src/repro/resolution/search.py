"""The ``Search_CS`` algorithm (Algorithm 1 of the paper).

Given a query context state, descend the profile tree following, at
each level, the cell whose key equals the query value *and* every cell
whose key is an ancestor of it (the special key ``'all'`` being the top
ancestor). Each complete root-to-leaf path reached this way is a stored
context state that covers the query state; every candidate is returned
annotated with both its hierarchy and its Jaccard distance from the
query, so the caller can pick the best under either metric.

Cell accesses are charged to an optional counter: a visited node is
scanned in full during the covering search (each cell examined once),
while the exact-match fast path pays linear-scan costs only - exactly
the two cost regimes analysed in Sec. 4.4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.context.state import ContextState
from repro.faults.registry import get_fault_registry
from repro.preferences.preference import AttributeClause
from repro.tree.counters import AccessCounter
from repro.tree.node import InternalNode, LeafNode
from repro.tree.profile_tree import ProfileTree

__all__ = ["SearchResult", "search_cs", "exact_search"]


@dataclass(frozen=True)
class SearchResult:
    """One candidate produced by ``Search_CS``.

    Attributes:
        state: The stored context state (covers the query state).
        entries: The leaf payloads: ``{attribute clause: score}``.
        hierarchy_distance: Def. 15 distance from the query state.
        jaccard_distance: Def. 17 distance from the query state.
    """

    state: ContextState
    entries: dict[AttributeClause, float]
    hierarchy_distance: int
    jaccard_distance: float

    def distance(self, metric: str) -> float:
        """The distance under the named metric."""
        if metric == "hierarchy":
            return float(self.hierarchy_distance)
        if metric == "jaccard":
            return self.jaccard_distance
        raise ValueError(f"unknown metric {metric!r}")

    def is_exact(self) -> bool:
        """True iff the stored state equals the query state."""
        return self.hierarchy_distance == 0


def search_cs(
    tree: ProfileTree,
    state: ContextState,
    counter: AccessCounter | None = None,
) -> list[SearchResult]:
    """Algorithm 1: all stored states covering ``state``, with distances.

    Results are ordered by (hierarchy distance, insertion order); the
    exact match, if stored, comes first with both distances zero.
    """
    faults = get_fault_registry()
    if faults.enabled:
        faults.fire("resolution.search_cs")
    query = tree.project(state)
    parameters = [tree.parameter_at_level(level) for level in range(len(query))]
    results: list[SearchResult] = []

    def descend(
        node: InternalNode | LeafNode,
        depth: int,
        path: list,
        hierarchy_distance: int,
        jaccard_distance: float,
    ) -> None:
        if depth == len(query):
            if not isinstance(node, LeafNode):  # pragma: no cover
                raise AssertionError("malformed tree: internal node at leaf depth")
            results.append(
                SearchResult(
                    state=tree.unproject(path),
                    entries=dict(node.entries),
                    hierarchy_distance=hierarchy_distance,
                    jaccard_distance=jaccard_distance,
                )
            )
            return
        if not isinstance(node, InternalNode):  # pragma: no cover
            raise AssertionError("malformed tree: leaf reached too early")
        hierarchy = parameters[depth].hierarchy
        query_value = query[depth]
        query_level = hierarchy.level_of(query_value)
        for key, child in node.scan(counter):
            if key == query_value:
                extra_h, extra_j = 0, 0.0
            elif hierarchy.is_ancestor(key, query_value):
                extra_h = hierarchy.level_of(key).index - query_level.index
                key_leaves = hierarchy.leaves(key)
                value_leaves = hierarchy.leaves(query_value)
                union = key_leaves | value_leaves
                extra_j = 1.0 - len(key_leaves & value_leaves) / len(union)
            else:
                continue
            path.append(key)
            descend(
                child,
                depth + 1,
                path,
                hierarchy_distance + extra_h,
                jaccard_distance + extra_j,
            )
            path.pop()

    descend(tree.root, 0, [], 0, 0.0)
    results.sort(key=lambda result: result.hierarchy_distance)
    return results


def exact_search(
    tree: ProfileTree,
    state: ContextState,
    counter: AccessCounter | None = None,
) -> SearchResult | None:
    """The exact-match fast path: one root-to-leaf traversal.

    Returns the stored result at exactly ``state`` or ``None``; the
    traversal pays linear-scan cell accesses only (Sec. 4.4, case 1).
    """
    entries = tree.exact_lookup(state, counter)
    if entries is None:
        return None
    return SearchResult(
        state=state, entries=entries, hierarchy_distance=0, jaccard_distance=0.0
    )
