"""Synthetic profile workloads (Sec. 5.2).

The performance study uses profiles over three synthetic context
parameters with domains of 50, 100 and 1000 values (and a 50/100/200
variant for the skew sweep), having 2, 3 and 3 hierarchy levels
respectively. Context values are drawn uniformly or zipf-distributed;
interest scores are a deterministic hash of the preference's identity
so regeneration never produces Def. 6 conflicts.
"""

from __future__ import annotations

import zlib
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ReproError
from repro.context.descriptor import ContextDescriptor, ParameterDescriptor
from repro.context.environment import ContextEnvironment
from repro.context.parameter import ContextParameter
from repro.hierarchy import Hierarchy, Value
from repro.hierarchy.builders import balanced_hierarchy, synthetic_level_sizes
from repro.preferences.preference import AttributeClause, ContextualPreference
from repro.preferences.profile import Profile
from repro.workloads.zipf import zipf_probabilities

__all__ = [
    "deterministic_score",
    "synthetic_parameter",
    "synthetic_environment",
    "ProfileSpec",
    "generate_profile",
]


def deterministic_score(*parts: object) -> float:
    """A stable score in ``[0, 1]`` derived from the preference identity.

    Using a checksum of the (state values, clause) identity guarantees
    that re-generating the same logical preference always yields the
    same score, so synthetic profiles are conflict-free by construction.
    """
    digest = zlib.crc32(repr(parts).encode("utf-8"))
    return (digest % 101) / 100.0


def synthetic_parameter(
    name: str,
    domain_size: int,
    num_levels: int,
    fanout: int = 10,
) -> ContextParameter:
    """A context parameter over a balanced synthetic hierarchy.

    ``num_levels`` counts all levels including ``ALL``, following the
    paper's phrasing ("the parameter with 50 values has 2 hierarchy
    levels").
    """
    sizes = synthetic_level_sizes(domain_size, num_levels, fanout)
    return ContextParameter(balanced_hierarchy(name, sizes))


def synthetic_environment(
    domain_sizes: Sequence[int] = (50, 100, 1000),
    num_levels: Sequence[int] = (2, 3, 3),
    names: Sequence[str] | None = None,
    fanout: int = 10,
) -> ContextEnvironment:
    """The paper's synthetic context environment.

    Defaults reproduce Sec. 5.2: domains of 50/100/1000 values with
    2/3/3 hierarchy levels. Parameter names default to ``p50``, ``p100``,
    ``p1000`` (by domain size).
    """
    if len(domain_sizes) != len(num_levels):
        raise ReproError("domain_sizes and num_levels must have the same length")
    if names is None:
        names = [f"p{size}" for size in domain_sizes]
    if len(names) != len(domain_sizes):
        raise ReproError("names must match domain_sizes in length")
    return ContextEnvironment(
        [
            synthetic_parameter(name, size, levels, fanout)
            for name, size, levels in zip(names, domain_sizes, num_levels)
        ]
    )


@dataclass(frozen=True)
class ProfileSpec:
    """Recipe for one synthetic profile.

    Attributes:
        num_preferences: Profile size (the paper sweeps 500..10000).
        zipf_a: Skew of the context-value distribution; 0 = uniform,
            the paper's skewed setting is 1.5. May also be given per
            parameter via ``zipf_a_per_parameter``.
        zipf_a_per_parameter: Optional per-parameter skew overriding
            ``zipf_a`` (used by the Fig. 6 right sweep, where only the
            200-value domain is skewed).
        level_weights: Probability of drawing a context value from each
            hierarchy level (detailed first). The default puts all mass
            on the detailed level, like the paper's profiles; the query
            workloads use mixed levels.
        num_attributes: Size of the non-context attribute pool.
        num_attribute_values: Values per non-context attribute.
        seed: Generator seed.
    """

    num_preferences: int
    zipf_a: float = 0.0
    zipf_a_per_parameter: tuple[float, ...] | None = None
    level_weights: tuple[float, ...] = (1.0,)
    num_attributes: int = 5
    num_attribute_values: int = 50
    seed: int = 17


def _value_distribution(
    hierarchy: Hierarchy, level_index: int, zipf_a: float
) -> tuple[tuple[Value, ...], np.ndarray]:
    values = hierarchy.domain(hierarchy.levels[level_index])
    return values, zipf_probabilities(len(values), zipf_a)


def generate_profile(
    environment: ContextEnvironment,
    spec: ProfileSpec,
) -> Profile:
    """Generate a conflict-free synthetic profile.

    Every preference constrains *all* context parameters with equality
    descriptors ("each preference consists of three context values"),
    carries a single-attribute equality clause, and a deterministic
    score, so the same spec always yields the same profile.
    """
    if spec.num_preferences < 0:
        raise ReproError("num_preferences must be >= 0")
    weights = np.asarray(spec.level_weights, dtype=float)
    if weights.ndim != 1 or weights.size == 0 or (weights < 0).any() or weights.sum() == 0:
        raise ReproError(f"bad level_weights {spec.level_weights!r}")
    weights = weights / weights.sum()
    per_parameter_a = spec.zipf_a_per_parameter
    if per_parameter_a is not None and len(per_parameter_a) != len(environment):
        raise ReproError(
            "zipf_a_per_parameter must have one entry per context parameter"
        )

    rng = np.random.default_rng(spec.seed)
    # Pre-compute the per-(parameter, level) value distributions.
    distributions: list[list[tuple[tuple[Value, ...], np.ndarray]]] = []
    for position, parameter in enumerate(environment):
        hierarchy = parameter.hierarchy
        zipf_a = per_parameter_a[position] if per_parameter_a is not None else spec.zipf_a
        usable_levels = min(len(weights), hierarchy.num_levels - 1)
        distributions.append(
            [
                _value_distribution(hierarchy, level_index, zipf_a)
                for level_index in range(usable_levels)
            ]
        )

    profile = Profile(environment)
    attempts_left = max(100, spec.num_preferences * 20)
    while len(profile) < spec.num_preferences and attempts_left > 0:
        attempts_left -= 1
        values: list[Value] = []
        descriptors: list[ParameterDescriptor] = []
        for parameter, per_level in zip(environment, distributions):
            level_weights = weights[: len(per_level)]
            level_weights = level_weights / level_weights.sum()
            level_index = int(rng.choice(len(per_level), p=level_weights))
            level_values, probabilities = per_level[level_index]
            value = level_values[int(rng.choice(len(level_values), p=probabilities))]
            values.append(value)
            descriptors.append(ParameterDescriptor.equals(parameter.name, value))
        attribute = f"attr{int(rng.integers(spec.num_attributes))}"
        attribute_value = f"v{int(rng.integers(spec.num_attribute_values))}"
        clause = AttributeClause(attribute, attribute_value)
        score = deterministic_score(tuple(values), attribute, attribute_value)
        preference = ContextualPreference(
            ContextDescriptor(descriptors), clause, score
        )
        if preference not in profile:
            profile.add(preference)
    return profile
