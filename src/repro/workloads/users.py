"""Simulated users for the usability study (Sec. 5.1, Table 1).

The paper ran 10 first-time users: each was assigned one of 12 default
profiles (by age group, sex and taste), modified it, and then manually
ranked query results so the system's rankings could be scored against
theirs. Without the human participants we simulate the same protocol:

* **Default profiles** are deterministic functions of the persona -
  per-POI-type base affinities modulated by contextual templates
  (company, weather, location) at several hierarchy levels.
* Each simulated user has **intrinsic** scores: the default scores plus
  a seeded personal idiosyncrasy. The intrinsic profile is the ground
  truth the user ranks by.
* **Customisation** applies the paper's modification mix: the user
  fixes the preferences that deviate most from their intrinsic taste
  (updates), adds a few missing ones (insertions), and spends time
  proportional to the work. More modifications leave fewer unfixed
  deviations - reproducing the paper's observation that meticulous
  users got more satisfactory results.
* Ground-truth ranking resolves the *intrinsic* profile with the
  Jaccard metric: users apply their most specific applicable
  preference, which is exactly the behaviour the paper credits for
  Jaccard's edge over the tie-prone hierarchy distance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.context.descriptor import ContextDescriptor
from repro.context.environment import ContextEnvironment
from repro.context.parameter import ContextParameter
from repro.exceptions import ReproError
from repro.hierarchy import (
    accompanying_people_hierarchy,
    location_hierarchy,
    temperature_hierarchy,
)
from repro.preferences.preference import AttributeClause, ContextualPreference
from repro.preferences.profile import Profile

__all__ = [
    "AGE_GROUPS",
    "SEXES",
    "TASTES",
    "Persona",
    "all_personas",
    "study_environment",
    "default_profile",
    "CustomizationResult",
    "SimulatedUser",
]

AGE_GROUPS = ("below30", "30to50", "above50")
SEXES = ("male", "female")
TASTES = ("mainstream", "offbeat")

_OPEN_AIR_TYPES = frozenset(
    {"monument", "archaeological_site", "zoo", "park", "market"}
)


@dataclass(frozen=True)
class Persona:
    """One of the 12 default-profile keys: age group x sex x taste."""

    age_group: str
    sex: str
    taste: str

    def __post_init__(self) -> None:
        if self.age_group not in AGE_GROUPS:
            raise ReproError(f"unknown age group {self.age_group!r}")
        if self.sex not in SEXES:
            raise ReproError(f"unknown sex {self.sex!r}")
        if self.taste not in TASTES:
            raise ReproError(f"unknown taste {self.taste!r}")

    @property
    def key(self) -> int:
        """Index of this persona among the 12 default profiles (0-11)."""
        return (
            AGE_GROUPS.index(self.age_group) * len(SEXES) * len(TASTES)
            + SEXES.index(self.sex) * len(TASTES)
            + TASTES.index(self.taste)
        )


def all_personas() -> list[Persona]:
    """The 12 personas, in key order."""
    return [
        Persona(age, sex, taste)
        for age in AGE_GROUPS
        for sex in SEXES
        for taste in TASTES
    ]


def study_environment() -> ContextEnvironment:
    """The running example's environment used by the usability study."""
    return ContextEnvironment(
        [
            ContextParameter(accompanying_people_hierarchy()),
            ContextParameter(temperature_hierarchy()),
            ContextParameter(location_hierarchy()),
        ]
    )


# ----------------------------------------------------------------------
# Persona scoring
# ----------------------------------------------------------------------
_BASE_AFFINITY = {
    "mainstream": {
        "museum": 0.85,
        "monument": 0.80,
        "archaeological_site": 0.90,
        "theater": 0.70,
        "cafeteria": 0.65,
        "zoo": 0.60,
        "park": 0.60,
        "gallery": 0.50,
        "brewery": 0.45,
        "market": 0.50,
    },
    "offbeat": {
        "gallery": 0.85,
        "market": 0.80,
        "brewery": 0.75,
        "park": 0.70,
        "theater": 0.65,
        "cafeteria": 0.60,
        "museum": 0.50,
        "monument": 0.45,
        "archaeological_site": 0.55,
        "zoo": 0.50,
    },
}

_AGE_MODIFIER = {
    "below30": {"brewery": 0.15, "market": 0.05, "park": 0.05, "zoo": -0.10, "museum": -0.05},
    "30to50": {},
    "above50": {"museum": 0.10, "monument": 0.10, "theater": 0.10, "brewery": -0.20, "zoo": -0.05},
}

_SEX_MODIFIER = {
    "female": {"gallery": 0.05, "theater": 0.05},
    "male": {"brewery": 0.05, "market": 0.05},
}


def _clamp_score(score: float) -> float:
    return round(min(0.95, max(0.05, score)), 2)


def base_affinity(persona: Persona, poi_type: str) -> float:
    """The persona's context-free affinity for a POI type."""
    if poi_type not in _BASE_AFFINITY["mainstream"]:
        raise ReproError(f"unknown POI type {poi_type!r}")
    score = _BASE_AFFINITY[persona.taste][poi_type]
    score += _AGE_MODIFIER[persona.age_group].get(poi_type, 0.0)
    score += _SEX_MODIFIER[persona.sex].get(poi_type, 0.0)
    return _clamp_score(score)


def _context_modifier(tag: str, poi_type: str) -> float:
    """How a contextual template shifts the base affinity."""
    open_air = poi_type in _OPEN_AIR_TYPES
    if tag == "friends":
        return {"brewery": 0.15, "cafeteria": 0.10, "park": 0.05}.get(poi_type, 0.0)
    if tag == "family":
        return {"zoo": 0.20, "park": 0.10, "museum": 0.05, "brewery": -0.30}.get(
            poi_type, 0.0
        )
    if tag == "alone":
        return {"museum": 0.10, "gallery": 0.10, "park": 0.05}.get(poi_type, 0.0)
    if tag == "bad_weather":
        return -0.25 if open_air else 0.10
    if tag == "athens":
        return {"archaeological_site": 0.10, "museum": 0.05}.get(poi_type, 0.0)
    if tag == "warm_athens":
        return 0.15 if open_air else 0.0
    if tag == "signature":
        return 0.10
    raise ReproError(f"unknown context tag {tag!r}")


#: Contextual templates: (tag, context mapping, POI types covered).
_ALL_TYPES = tuple(_BASE_AFFINITY["mainstream"])
_TEMPLATES: tuple[tuple[str, dict[str, object], tuple[str, ...]], ...] = (
    ("friends", {"accompanying_people": "friends"}, _ALL_TYPES),
    ("family", {"accompanying_people": "family"}, _ALL_TYPES),
    ("bad_weather", {"temperature": "bad"}, _ALL_TYPES),
    (
        "athens",
        {"location": "Athens"},
        ("museum", "archaeological_site", "monument", "gallery", "brewery"),
    ),
    (
        "warm_athens",
        {"temperature": "warm", "location": "Athens"},
        ("archaeological_site", "monument", "park", "zoo"),
    ),
    (
        "signature",
        {"accompanying_people": "friends", "temperature": "warm", "location": "Plaka"},
        ("brewery", "cafeteria", "archaeological_site", "market", "park"),
    ),
    (
        "signature",
        {"accompanying_people": "family", "temperature": "mild", "location": "Kifisia"},
        ("zoo", "park", "museum", "cafeteria", "market"),
    ),
    (
        "signature",
        {"accompanying_people": "alone", "temperature": "cold", "location": "Syntagma"},
        ("museum", "gallery", "theater", "cafeteria", "monument"),
    ),
    (
        "signature",
        {"accompanying_people": "friends", "temperature": "hot", "location": "Ladadika"},
        ("cafeteria", "brewery", "market", "gallery", "park"),
    ),
    (
        "signature",
        {"accompanying_people": "family", "temperature": "warm", "location": "Perama"},
        ("park", "zoo", "monument", "cafeteria", "museum"),
    ),
    (
        "signature",
        {"accompanying_people": "alone", "temperature": "freezing", "location": "Kastra"},
        ("theater", "museum", "gallery", "cafeteria", "monument"),
    ),
)

#: Extra templates only meticulous users discover and insert.
_EXTRA_TEMPLATES: tuple[tuple[str, dict[str, object], tuple[str, ...]], ...] = (
    ("alone", {"accompanying_people": "alone"}, ("museum", "gallery", "park", "theater")),
)


def _template_entries(
    persona: Persona,
    templates: tuple[tuple[str, dict[str, object], tuple[str, ...]], ...],
) -> list[tuple[ContextDescriptor, AttributeClause, float]]:
    entries = []
    for tag, mapping, types in templates:
        descriptor = ContextDescriptor.from_mapping(mapping)
        for poi_type in types:
            score = _clamp_score(
                base_affinity(persona, poi_type) + _context_modifier(tag, poi_type)
            )
            entries.append((descriptor, AttributeClause("type", poi_type), score))
    return entries


def default_profile(persona: Persona, environment: ContextEnvironment) -> Profile:
    """The deterministic default profile assigned to a persona."""
    profile = Profile(environment)
    for descriptor, clause, score in _template_entries(persona, _TEMPLATES):
        profile.add(ContextualPreference(descriptor, clause, score))
    return profile


# ----------------------------------------------------------------------
# Simulated users
# ----------------------------------------------------------------------
@dataclass
class CustomizationResult:
    """Outcome of a user's profile-editing session.

    Attributes:
        profile: The customised profile the system will serve.
        intrinsic_profile: The user's ground-truth preferences.
        num_modifications: Insertions + deletions + updates performed.
        update_time_minutes: Simulated wall-clock editing time.
    """

    profile: Profile
    intrinsic_profile: Profile
    num_modifications: int
    update_time_minutes: int


class SimulatedUser:
    """One simulated study participant.

    Args:
        user_id: 1-based participant number.
        persona: The persona determining the assigned default profile.
        environment: The study's context environment.
        meticulousness: In ``[0, 1]``; scales how many modifications the
            user makes and how much time they spend.
        seed: Seed for the user's personal idiosyncrasy.
    """

    def __init__(
        self,
        user_id: int,
        persona: Persona,
        environment: ContextEnvironment,
        meticulousness: float = 0.5,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= meticulousness <= 1.0:
            raise ReproError("meticulousness must be in [0, 1]")
        self.user_id = user_id
        self.persona = persona
        self._environment = environment
        self._meticulousness = meticulousness
        self._rng = np.random.default_rng(seed * 1000 + user_id)

    @property
    def meticulousness(self) -> float:
        """How carefully this user edits their profile, in ``[0, 1]``."""
        return self._meticulousness

    def customize(self) -> CustomizationResult:
        """Run the editing session and return both profiles.

        The user's intrinsic score for each template preference is the
        default score plus a personal idiosyncrasy; editing fixes the
        largest discrepancies first (updates), then inserts the extra
        preferences the defaults lack. Unfixed discrepancies remain in
        the served profile and later depress ranking agreement.
        """
        base_entries = _template_entries(self.persona, _TEMPLATES)
        extra_entries = _template_entries(self.persona, _EXTRA_TEMPLATES)

        deltas = self._rng.normal(0.0, 0.12, size=len(base_entries))
        intrinsic_scores = [
            _clamp_score(score + delta)
            for (_d, _c, score), delta in zip(base_entries, deltas)
        ]
        extra_deltas = self._rng.normal(0.0, 0.08, size=len(extra_entries))
        extra_scores = [
            _clamp_score(score + delta)
            for (_d, _c, score), delta in zip(extra_entries, extra_deltas)
        ]

        num_modifications = int(round(10 + self._meticulousness * 28))
        num_inserts = min(len(extra_entries), max(0, num_modifications // 8))
        num_updates = min(len(base_entries), num_modifications - num_inserts)
        num_modifications = num_updates + num_inserts

        # Fix the worst discrepancies first.
        gaps = [
            abs(intrinsic - score)
            for (_d, _c, score), intrinsic in zip(base_entries, intrinsic_scores)
        ]
        fixed = set(np.argsort(gaps)[::-1][:num_updates].tolist())

        served = Profile(self._environment)
        intrinsic = Profile(self._environment)
        for index, (descriptor, clause, score) in enumerate(base_entries):
            served_score = intrinsic_scores[index] if index in fixed else score
            served.add(ContextualPreference(descriptor, clause, served_score))
            intrinsic.add(
                ContextualPreference(descriptor, clause, intrinsic_scores[index])
            )
        for index in range(len(extra_entries)):
            descriptor, clause, _score = extra_entries[index]
            preference = ContextualPreference(descriptor, clause, extra_scores[index])
            if index < num_inserts:
                served.add(preference)
            intrinsic.add(preference)

        minutes = int(
            round(
                num_modifications * (0.9 + 0.4 * self._meticulousness)
                + 3
                + 5 * self._meticulousness
                + self._rng.uniform(0, 3)
            )
        )
        return CustomizationResult(
            profile=served,
            intrinsic_profile=intrinsic,
            num_modifications=num_modifications,
            update_time_minutes=minutes,
        )
