"""Emulation of the paper's "real profile" (Sec. 5.2).

The authors' real profile - 522 preferences whose context parameters
``accompanying_people``, ``time`` and ``location`` have active domains
of 4, 17 and 100 values - is not published. This module rebuilds a
profile with exactly those statistics deterministically: the tree-size
and access-count experiments of Figs. 5 and 7 depend only on the
preference count, the domain cardinalities and the value skew, all of
which are preserved.
"""

from __future__ import annotations

import numpy as np

from repro.context.descriptor import ContextDescriptor, ParameterDescriptor
from repro.context.environment import ContextEnvironment
from repro.context.parameter import ContextParameter
from repro.db.poi import POI_TYPES
from repro.hierarchy import Hierarchy
from repro.preferences.preference import AttributeClause, ContextualPreference
from repro.preferences.profile import Profile
from repro.workloads.synthetic import deterministic_score
from repro.workloads.zipf import zipf_probabilities

__all__ = [
    "REAL_PROFILE_SIZE",
    "real_time_hierarchy",
    "real_location_hierarchy",
    "real_accompanying_hierarchy",
    "real_environment",
    "generate_real_profile",
]

#: Number of preferences in the paper's real profile.
REAL_PROFILE_SIZE = 522

_RELATIONSHIPS = ("friends", "family", "alone", "colleagues")

_PERIOD_OF_SLOT = {
    # 17 time slots grouped into 5 day periods (slot and period names
    # are disjoint: hierarchy values are unique across levels).
    "early_morning": "morning",
    "mid_morning": "morning",
    "late_morning": "morning",
    "noon": "midday",
    "early_afternoon": "midday",
    "afternoon": "midday",
    "late_afternoon": "midday",
    "early_evening": "evening",
    "mid_evening": "evening",
    "late_evening": "evening",
    "early_night": "night",
    "late_night": "night",
    "midnight": "night",
    "weekend_morning": "weekend",
    "weekend_afternoon": "weekend",
    "weekend_evening": "weekend",
    "holiday": "weekend",
}


def real_accompanying_hierarchy() -> Hierarchy:
    """``accompanying_people``: 4 detailed values, 2 levels (incl. ALL)."""
    return Hierarchy(
        "accompanying_people",
        levels=["Relationship"],
        members={"Relationship": list(_RELATIONSHIPS)},
    )


def real_time_hierarchy() -> Hierarchy:
    """``time``: 17 detailed slots < 5 day periods < ALL (3 levels)."""
    slots = list(_PERIOD_OF_SLOT)
    periods = list(dict.fromkeys(_PERIOD_OF_SLOT.values()))
    return Hierarchy(
        "time",
        levels=["Slot", "Period"],
        members={"Slot": slots, "Period": periods},
        parent_of=dict(_PERIOD_OF_SLOT),
    )


def real_location_hierarchy() -> Hierarchy:
    """``location``: 100 regions < 20 cities < 2 countries < ALL (4 levels).

    Regions split evenly across 20 cities; the first 10 cities belong
    to ``Greece``, the rest to ``Cyprus`` - the exact grouping is
    immaterial to the experiments, only the cardinalities matter.
    """
    regions = [f"region_{index:02d}" for index in range(100)]
    cities = [f"city_{index:02d}" for index in range(20)]
    countries = ["Greece", "Cyprus"]
    parent_of: dict[str, str] = {}
    for index, region in enumerate(regions):
        parent_of[region] = cities[index // 5]
    for index, city in enumerate(cities):
        parent_of[city] = countries[0] if index < 10 else countries[1]
    return Hierarchy(
        "location",
        levels=["Region", "City", "Country"],
        members={"Region": regions, "City": cities, "Country": countries},
        parent_of=parent_of,
    )


def real_environment() -> ContextEnvironment:
    """The real profile's context environment (A, T, L order)."""
    return ContextEnvironment(
        [
            ContextParameter(real_accompanying_hierarchy()),
            ContextParameter(real_time_hierarchy()),
            ContextParameter(real_location_hierarchy()),
        ]
    )


def generate_real_profile(
    num_preferences: int = REAL_PROFILE_SIZE,
    seed: int = 42,
    zipf_a: float = 1.5,
    higher_level_fraction: float = 0.15,
) -> tuple[ContextEnvironment, Profile]:
    """Deterministically rebuild the 522-preference real profile.

    Args:
        num_preferences: Profile size (522 in the paper).
        seed: Generator seed.
        zipf_a: Mild skew of the context-value popularity - real users
            concentrate on favourite places and times.
        higher_level_fraction: Probability that a context value is
            expressed one hierarchy level up (users do write
            "weekends" or "Athens", not only detailed values).

    Returns:
        ``(environment, profile)``.
    """
    environment = real_environment()
    rng = np.random.default_rng(seed)
    attributes = [
        ("type", list(POI_TYPES)),
        ("open_air", [True, False]),
        ("name", [f"poi_{index}" for index in range(40)]),
    ]
    attribute_weights = np.array([0.6, 0.15, 0.25])

    per_parameter: list[tuple[tuple, np.ndarray, tuple, np.ndarray]] = []
    for parameter in environment:
        hierarchy = parameter.hierarchy
        detailed = hierarchy.dom
        detailed_p = zipf_probabilities(len(detailed), zipf_a)
        upper = hierarchy.domain(hierarchy.levels[1]) if hierarchy.num_levels > 2 else detailed
        upper_p = zipf_probabilities(len(upper), zipf_a)
        per_parameter.append((detailed, detailed_p, upper, upper_p))

    profile = Profile(environment)
    while len(profile) < num_preferences:
        values = []
        for parameter, (detailed, detailed_p, upper, upper_p) in zip(
            environment, per_parameter
        ):
            use_upper = (
                parameter.hierarchy.num_levels > 2
                and rng.random() < higher_level_fraction
            )
            pool, probabilities = (upper, upper_p) if use_upper else (detailed, detailed_p)
            values.append(pool[int(rng.choice(len(pool), p=probabilities))])
        attribute_index = int(rng.choice(len(attributes), p=attribute_weights))
        attribute, pool = attributes[attribute_index]
        attribute_value = pool[int(rng.integers(len(pool)))]
        clause = AttributeClause(attribute, attribute_value)
        score = deterministic_score(tuple(values), attribute, attribute_value)
        descriptor = ContextDescriptor(
            [
                ParameterDescriptor.equals(parameter.name, value)
                for parameter, value in zip(environment, values)
            ]
        )
        preference = ContextualPreference(descriptor, clause, score)
        if preference not in profile:
            profile.add(preference)
    return environment, profile
