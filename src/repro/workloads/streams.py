"""Query streams: sequences of context states with popularity and locality.

Caching only pays off when query contexts repeat; this module models
the two reasons they do: **popularity** (some contexts are globally
hot - zipf over the state set) and **temporal locality** (a user stays
in the same context for a while - with probability ``locality``, a
query repeats the previous state). Used by the result-caching example
and the cache ablations.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.exceptions import ReproError
from repro.context.state import ContextState
from repro.workloads.zipf import ZipfSampler

__all__ = ["query_stream"]


def query_stream(
    states: Sequence[ContextState],
    num_queries: int,
    seed: int = 0,
    zipf_a: float = 1.0,
    locality: float = 0.0,
) -> Iterator[ContextState]:
    """Yield ``num_queries`` states drawn from ``states``.

    Args:
        states: The candidate context states (popularity rank = position).
        num_queries: Stream length.
        seed: Generator seed; equal seeds give equal streams.
        zipf_a: Popularity skew over ``states`` (0 = uniform).
        locality: Probability in ``[0, 1]`` that a query repeats the
            immediately preceding state.

    Raises:
        ReproError: On empty state sets or parameters out of range.
    """
    if not states:
        raise ReproError("query_stream needs at least one candidate state")
    if num_queries < 0:
        raise ReproError("num_queries must be >= 0")
    if not 0.0 <= locality <= 1.0:
        raise ReproError(f"locality must be in [0, 1], got {locality}")
    rng = np.random.default_rng(seed)
    sampler = ZipfSampler(len(states), zipf_a, rng)
    previous: ContextState | None = None
    for _ in range(num_queries):
        if previous is not None and rng.random() < locality:
            yield previous
            continue
        previous = states[sampler.sample()]
        yield previous
