"""Query workloads for the performance experiments (Sec. 5.2, Fig. 7).

Two kinds of query context states are needed: states that *exactly*
match a stored preference (exact-match resolution is a single
root-to-leaf traversal) and free states "where the context parameters
have values from different hierarchy levels" (covering resolution).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ReproError
from repro.context.environment import ContextEnvironment
from repro.context.state import ContextState
from repro.hierarchy import Value
from repro.preferences.profile import Profile

__all__ = ["exact_match_states", "random_states"]


def exact_match_states(
    profile: Profile,
    num_queries: int,
    seed: int = 5,
) -> list[ContextState]:
    """Query states sampled from the profile's own context states.

    Every returned state is guaranteed to have an exact match in any
    profile tree built over ``profile`` (sampling is with replacement,
    so ``num_queries`` may exceed the number of distinct states).
    """
    if num_queries < 0:
        raise ReproError("num_queries must be >= 0")
    states = profile.states()
    if not states:
        raise ReproError("cannot sample query states from an empty profile")
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, len(states), size=num_queries)
    return [states[int(index)] for index in indices]


def random_states(
    environment: ContextEnvironment,
    num_queries: int,
    seed: int = 5,
    level_weights: tuple[float, ...] = (0.7, 0.2, 0.1),
) -> list[ContextState]:
    """Free query states with values drawn from mixed hierarchy levels.

    Args:
        environment: The context environment.
        num_queries: Number of states.
        seed: Generator seed.
        level_weights: Probability of drawing each parameter's value
            from each hierarchy level, detailed level first; weights
            beyond a parameter's level count are renormalised away.
            The default mix (70% detailed / 20% one level up / 10% two
            levels up) realises the paper's "values from different
            hierarchy levels".
    """
    if num_queries < 0:
        raise ReproError("num_queries must be >= 0")
    weights = np.asarray(level_weights, dtype=float)
    if weights.ndim != 1 or weights.size == 0 or (weights < 0).any() or weights.sum() == 0:
        raise ReproError(f"bad level_weights {level_weights!r}")
    rng = np.random.default_rng(seed)
    states: list[ContextState] = []
    for _ in range(num_queries):
        values: list[Value] = []
        for parameter in environment:
            hierarchy = parameter.hierarchy
            usable = min(weights.size, hierarchy.num_levels - 1)
            level_p = weights[:usable] / weights[:usable].sum()
            level_index = int(rng.choice(usable, p=level_p))
            pool = hierarchy.domain(hierarchy.levels[level_index])
            values.append(pool[int(rng.integers(len(pool)))])
        states.append(ContextState(environment, values))
    return states
