"""Mobility traces: realistic streams of *current* context states.

A user's context does not jump around uniformly: locations follow a
random walk that mostly stays within the current city (moves to a
sibling region), occasionally changes city or country; weather drifts
between adjacent conditions; company changes rarely. This generator
produces such a trace over any environment whose parameters expose the
needed structure - giving cache and acquisition experiments a workload
with genuine temporal and spatial locality.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.exceptions import ReproError
from repro.context.environment import ContextEnvironment
from repro.context.state import ContextState
from repro.hierarchy import Hierarchy, Value

__all__ = ["mobility_trace"]


def _neighbour_step(
    hierarchy: Hierarchy, value: Value, rng: np.random.Generator, jump: float
) -> Value:
    """One random-walk step over a hierarchy's detailed level.

    With probability ``1 - jump`` move to a sibling (same parent);
    otherwise jump to a uniform random detailed value (possibly far).
    Single-child parents force the jump branch.
    """
    if rng.random() < jump:
        domain = hierarchy.dom
        return domain[int(rng.integers(len(domain)))]
    parent = hierarchy.parent(value)
    siblings = [v for v in hierarchy.children(parent) if v != value] or [value]
    return siblings[int(rng.integers(len(siblings)))]


def _drift_step(
    hierarchy: Hierarchy, value: Value, rng: np.random.Generator
) -> Value:
    """Move to an adjacent value in the detailed level's declared order
    (weather-style drift), staying put at the ends half the time."""
    domain = hierarchy.dom
    index = hierarchy.rank(value)
    delta = int(rng.integers(-1, 2))  # -1, 0, +1
    return domain[max(0, min(len(domain) - 1, index + delta))]


def mobility_trace(
    environment: ContextEnvironment,
    num_steps: int,
    seed: int = 0,
    move_probability: float = 0.5,
    jump_probability: float = 0.1,
    walk_parameters: tuple[str, ...] = ("location",),
    drift_parameters: tuple[str, ...] = ("temperature",),
) -> Iterator[ContextState]:
    """Yield ``num_steps`` detailed context states along a user's day.

    Args:
        environment: The context environment.
        num_steps: Trace length.
        seed: Generator seed.
        move_probability: Chance per step that each parameter changes at
            all (otherwise the previous value persists - locality).
        jump_probability: For walk parameters, chance that a change is a
            far jump instead of a sibling move.
        walk_parameters: Parameters following the sibling random walk.
        drift_parameters: Parameters drifting along their value order.
            Everything else changes to a uniform random value when it
            changes (company-style).

    Raises:
        ReproError: On unknown parameter names or bad probabilities.
    """
    if num_steps < 0:
        raise ReproError("num_steps must be >= 0")
    for probability in (move_probability, jump_probability):
        if not 0.0 <= probability <= 1.0:
            raise ReproError(f"probabilities must be in [0, 1], got {probability}")
    for name in (*walk_parameters, *drift_parameters):
        if name not in environment:
            raise ReproError(f"unknown parameter {name!r} in mobility config")
    rng = np.random.default_rng(seed)

    values: list[Value] = []
    for parameter in environment:
        domain = parameter.hierarchy.dom
        values.append(domain[int(rng.integers(len(domain)))])

    for _ in range(num_steps):
        yield ContextState(environment, tuple(values))
        for position, parameter in enumerate(environment):
            if rng.random() >= move_probability:
                continue
            hierarchy = parameter.hierarchy
            if parameter.name in walk_parameters:
                values[position] = _neighbour_step(
                    hierarchy, values[position], rng, jump_probability
                )
            elif parameter.name in drift_parameters:
                values[position] = _drift_step(hierarchy, values[position], rng)
            else:
                domain = hierarchy.dom
                values[position] = domain[int(rng.integers(len(domain)))]
