"""Workload generators: synthetic/real profiles, queries, users (Sec. 5)."""

from repro.workloads.mobility import mobility_trace
from repro.workloads.queries import exact_match_states, random_states
from repro.workloads.streams import query_stream
from repro.workloads.real_profile import (
    REAL_PROFILE_SIZE,
    generate_real_profile,
    real_accompanying_hierarchy,
    real_environment,
    real_location_hierarchy,
    real_time_hierarchy,
)
from repro.workloads.synthetic import (
    ProfileSpec,
    deterministic_score,
    generate_profile,
    synthetic_environment,
    synthetic_parameter,
)
from repro.workloads.users import (
    AGE_GROUPS,
    SEXES,
    TASTES,
    CustomizationResult,
    Persona,
    SimulatedUser,
    all_personas,
    default_profile,
    study_environment,
)
from repro.workloads.zipf import ZipfSampler, zipf_probabilities

__all__ = [
    "AGE_GROUPS",
    "CustomizationResult",
    "Persona",
    "ProfileSpec",
    "REAL_PROFILE_SIZE",
    "SEXES",
    "SimulatedUser",
    "TASTES",
    "ZipfSampler",
    "all_personas",
    "default_profile",
    "deterministic_score",
    "exact_match_states",
    "generate_profile",
    "generate_real_profile",
    "mobility_trace",
    "query_stream",
    "random_states",
    "real_accompanying_hierarchy",
    "real_environment",
    "real_location_hierarchy",
    "real_time_hierarchy",
    "study_environment",
    "synthetic_environment",
    "synthetic_parameter",
    "zipf_probabilities",
]
