"""Bounded zipf sampling for workload generation (Sec. 5.2).

The paper draws context values "either using a uniform data
distribution, or a zipf data distribution with a = 1.5". This module
implements the bounded zipf law ``p(rank) ~ 1 / rank^a`` over ``n``
values; ``a = 0`` degenerates to uniform, larger ``a`` concentrates
mass on the first ("hot") ranks.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ReproError

__all__ = ["zipf_probabilities", "ZipfSampler"]


def zipf_probabilities(n: int, a: float) -> np.ndarray:
    """Probabilities of the bounded zipf(``a``) law over ranks ``1..n``."""
    if n <= 0:
        raise ReproError(f"need a positive number of values, got {n}")
    if a < 0:
        raise ReproError(f"zipf exponent must be >= 0, got {a}")
    weights = 1.0 / np.power(np.arange(1, n + 1, dtype=float), a)
    return weights / weights.sum()


class ZipfSampler:
    """Samples ranks ``0..n-1`` with zipf(``a``) probabilities.

    Example:
        >>> sampler = ZipfSampler(100, a=1.5, rng=np.random.default_rng(0))
        >>> 0 <= sampler.sample() < 100
        True
    """

    def __init__(self, n: int, a: float, rng: np.random.Generator) -> None:
        self._n = n
        self._a = a
        self._probabilities = zipf_probabilities(n, a)
        self._rng = rng

    @property
    def n(self) -> int:
        """Number of ranks."""
        return self._n

    @property
    def a(self) -> float:
        """The zipf exponent (0 = uniform)."""
        return self._a

    def sample(self) -> int:
        """One rank in ``[0, n)``."""
        return int(self._rng.choice(self._n, p=self._probabilities))

    def sample_many(self, k: int) -> np.ndarray:
        """``k`` i.i.d. ranks in ``[0, n)``."""
        if k < 0:
            raise ReproError(f"sample count must be >= 0, got {k}")
        return self._rng.choice(self._n, size=k, p=self._probabilities)
