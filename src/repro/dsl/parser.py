"""Recursive-descent parser for the preference/query DSL.

Grammar (keywords case-insensitive; ``#`` marks the paper concept):

.. code-block:: text

    preference := PREFER clause SCORE number [WHEN context]      # Def. 5
    clause     := IDENT op literal
    op         := = | != | < | > | <= | >=
    context    := condition (AND condition)*                     # Def. 3
    condition  := IDENT = literal                                # Def. 1
                | IDENT IN ( literal [, literal]* )
                | IDENT BETWEEN literal AND literal
    extended   := context (OR context)*                          # Def. 8
    query      := [TOP number] [WHERE clause (AND clause)*]
                  [IN CONTEXT extended]                          # Def. 9
    literal    := 'string' | number | TRUE | FALSE

``BETWEEN ... AND ...`` binds its ``AND`` to the range, so
``t BETWEEN 'mild' AND 'hot' AND place = 'Plaka'`` parses as a range
condition conjoined with an equality condition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.context.descriptor import (
    ContextDescriptor,
    ExtendedContextDescriptor,
    ParameterDescriptor,
)
from repro.preferences.preference import AttributeClause, ContextualPreference
from repro.dsl.lexer import DslSyntaxError, Token, tokenize

__all__ = [
    "ParsedQuery",
    "parse_clause",
    "parse_descriptor",
    "parse_extended_descriptor",
    "parse_preference",
    "parse_query",
]


@dataclass(frozen=True)
class ParsedQuery:
    """The outcome of parsing a query string (Def. 9 ingredients).

    Attributes:
        top_k: Result-set bound, if a ``TOP k`` prefix was given.
        clauses: Ordinary ``WHERE`` conditions.
        descriptor: The ``IN CONTEXT`` extended descriptor, if any.
    """

    top_k: int | None = None
    clauses: tuple[AttributeClause, ...] = ()
    descriptor: ExtendedContextDescriptor | None = None


class _Parser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = tokenize(text)
        self._index = 0

    # -- token plumbing -------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _error(self, message: str) -> DslSyntaxError:
        token = self._peek()
        return DslSyntaxError(
            f"{message} at position {token.position} "
            f"(found {token.value!r}) in: {self._text!r}"
        )

    def _expect(self, kind: str, value: object = None) -> Token:
        token = self._peek()
        if token.kind != kind or (value is not None and token.value != value):
            wanted = value if value is not None else kind
            raise self._error(f"expected {wanted}")
        return self._advance()

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token.kind == "KEYWORD" and token.value == word

    def _expect_end(self) -> None:
        if self._peek().kind != "EOF":
            raise self._error("unexpected trailing input")

    # -- terminals ------------------------------------------------------
    def _literal(self) -> object:
        token = self._peek()
        if token.kind in ("STRING", "NUMBER"):
            return self._advance().value
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            self._advance()
            return token.value == "TRUE"
        raise self._error("expected a literal")

    def _identifier(self) -> str:
        return str(self._expect("IDENT").value)

    # -- productions ------------------------------------------------------
    def clause(self) -> AttributeClause:
        attribute = self._identifier()
        op = str(self._expect("OP").value)
        value = self._literal()
        return AttributeClause(attribute, value, op)

    def condition(self) -> ParameterDescriptor:
        name = self._identifier()
        token = self._peek()
        if token.kind == "OP" and token.value == "=":
            self._advance()
            return ParameterDescriptor.equals(name, self._literal())
        if self._at_keyword("IN"):
            self._advance()
            self._expect("LPAREN")
            values = [self._literal()]
            while self._peek().kind == "COMMA":
                self._advance()
                values.append(self._literal())
            self._expect("RPAREN")
            return ParameterDescriptor.one_of(name, values)
        if self._at_keyword("BETWEEN"):
            self._advance()
            low = self._literal()
            self._expect("KEYWORD", "AND")
            high = self._literal()
            return ParameterDescriptor.between(name, low, high)
        raise self._error("expected '=', IN or BETWEEN")

    def context(self) -> ContextDescriptor:
        conditions = [self.condition()]
        while self._at_keyword("AND"):
            self._advance()
            conditions.append(self.condition())
        return ContextDescriptor(conditions)

    def extended(self) -> ExtendedContextDescriptor:
        disjuncts = [self.context()]
        while self._at_keyword("OR"):
            self._advance()
            disjuncts.append(self.context())
        return ExtendedContextDescriptor(disjuncts)

    def preference(self) -> ContextualPreference:
        self._expect("KEYWORD", "PREFER")
        clause = self.clause()
        self._expect("KEYWORD", "SCORE")
        score_token = self._expect("NUMBER")
        descriptor = ContextDescriptor.empty()
        if self._at_keyword("WHEN"):
            self._advance()
            descriptor = self.context()
        self._expect_end()
        return ContextualPreference(descriptor, clause, float(score_token.value))

    def query(self) -> ParsedQuery:
        top_k = None
        if self._at_keyword("TOP"):
            self._advance()
            top_k = int(self._expect("NUMBER").value)
        clauses: list[AttributeClause] = []
        if self._at_keyword("WHERE"):
            self._advance()
            clauses.append(self.clause())
            while self._at_keyword("AND"):
                self._advance()
                clauses.append(self.clause())
        descriptor = None
        if self._at_keyword("IN"):
            self._advance()
            self._expect("KEYWORD", "CONTEXT")
            descriptor = self.extended()
        self._expect_end()
        return ParsedQuery(
            top_k=top_k, clauses=tuple(clauses), descriptor=descriptor
        )


def parse_clause(text: str) -> AttributeClause:
    """Parse one attribute clause, e.g. ``"type = 'brewery'"``."""
    parser = _Parser(text)
    clause = parser.clause()
    parser._expect_end()
    return clause


def parse_descriptor(text: str) -> ContextDescriptor:
    """Parse a composite context descriptor (Def. 3)."""
    parser = _Parser(text)
    descriptor = parser.context()
    parser._expect_end()
    return descriptor


def parse_extended_descriptor(text: str) -> ExtendedContextDescriptor:
    """Parse an extended (DNF) context descriptor (Def. 8)."""
    parser = _Parser(text)
    descriptor = parser.extended()
    parser._expect_end()
    return descriptor


def parse_preference(text: str) -> ContextualPreference:
    """Parse a ``PREFER ... SCORE ... [WHEN ...]`` statement (Def. 5).

    Example:
        >>> parse_preference(
        ...     "PREFER type = 'brewery' SCORE 0.9 "
        ...     "WHEN accompanying_people = 'friends'"
        ... )
    """
    return _Parser(text).preference()


def parse_query(text: str) -> ParsedQuery:
    """Parse a ``[TOP k] [WHERE ...] [IN CONTEXT ...]`` query (Def. 9).

    Example:
        >>> parse_query(
        ...     "TOP 5 WHERE open_air = TRUE IN CONTEXT "
        ...     "location = 'Plaka' AND temperature BETWEEN 'mild' AND 'hot'"
        ... )
    """
    return _Parser(text).query()
