"""Tokenizer for the preference/query DSL.

The surface syntax (see :mod:`repro.dsl`) is tiny: keywords, dotted-less
identifiers, single-quoted strings, numbers, comparison operators and
punctuation. The lexer is a single regex pass producing
:class:`Token` objects with positions for error messages.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.exceptions import ReproError

__all__ = ["DslSyntaxError", "Token", "tokenize", "KEYWORDS"]

#: Reserved words, case-insensitive in the source text.
KEYWORDS = frozenset(
    {
        "PREFER",
        "SCORE",
        "WHEN",
        "IN",
        "BETWEEN",
        "AND",
        "OR",
        "CONTEXT",
        "TOP",
        "WHERE",
        "TRUE",
        "FALSE",
    }
)


class DslSyntaxError(ReproError):
    """A DSL string failed to tokenize or parse."""


@dataclass(frozen=True)
class Token:
    """One lexical token.

    Attributes:
        kind: ``KEYWORD``, ``IDENT``, ``STRING``, ``NUMBER``, ``OP``,
            ``LPAREN``, ``RPAREN``, ``COMMA`` or ``EOF``.
        value: The token's semantic value (keywords are upper-cased;
            strings are unquoted; numbers are int/float).
        position: Character offset in the source text.
    """

    kind: str
    value: object
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; a trailing ``EOF`` token is always appended.

    Raises:
        DslSyntaxError: On any character the grammar does not know.
    """
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise DslSyntaxError(
                f"unexpected character {text[position]!r} at position {position}"
            )
        if match.lastgroup == "string":
            raw = match.group("string")[1:-1]
            value = raw.replace("\\'", "'").replace("\\\\", "\\")
            tokens.append(Token("STRING", value, position))
        elif match.lastgroup == "number":
            raw = match.group("number")
            is_float = "." in raw or "e" in raw or "E" in raw
            value = float(raw) if is_float else int(raw)
            tokens.append(Token("NUMBER", value, position))
        elif match.lastgroup == "op":
            tokens.append(Token("OP", match.group("op"), position))
        elif match.lastgroup == "lparen":
            tokens.append(Token("LPAREN", "(", position))
        elif match.lastgroup == "rparen":
            tokens.append(Token("RPAREN", ")", position))
        elif match.lastgroup == "comma":
            tokens.append(Token("COMMA", ",", position))
        elif match.lastgroup == "word":
            word = match.group("word")
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), position))
            else:
                tokens.append(Token("IDENT", word, position))
        # whitespace falls through
        position = match.end()
    tokens.append(Token("EOF", None, len(text)))
    return tokens
