"""A tiny declarative syntax for preferences and contextual queries.

Write preferences the way the paper states them::

    PREFER name = 'Acropolis' SCORE 0.8
        WHEN location = 'Plaka' AND temperature IN ('warm', 'hot')

and queries with explicit context (Def. 9)::

    TOP 20 WHERE open_air = TRUE
        IN CONTEXT location = 'Athens' AND accompanying_people = 'family'
        OR location = 'Thessaloniki'

``to_query`` turns a parsed query into an executable
:class:`~repro.query.ContextualQuery` for an environment.
"""

from repro.context.environment import ContextEnvironment
from repro.dsl.lexer import DslSyntaxError, Token, tokenize
from repro.dsl.parser import (
    ParsedQuery,
    parse_clause,
    parse_descriptor,
    parse_extended_descriptor,
    parse_preference,
    parse_query,
)
from repro.dsl.render import (
    parse_profile,
    render_clause,
    render_descriptor,
    render_preference,
    render_profile,
)
from repro.query.contextual_query import ContextualQuery

__all__ = [
    "DslSyntaxError",
    "ParsedQuery",
    "Token",
    "parse_clause",
    "parse_descriptor",
    "parse_extended_descriptor",
    "parse_preference",
    "parse_profile",
    "parse_query",
    "render_clause",
    "render_descriptor",
    "render_preference",
    "render_profile",
    "to_query",
    "tokenize",
]


def to_query(
    parsed: ParsedQuery, environment: ContextEnvironment
) -> ContextualQuery:
    """Materialise a parsed query against an environment."""
    return ContextualQuery(
        environment,
        descriptor=parsed.descriptor,
        base_clauses=parsed.clauses,
        top_k=parsed.top_k,
    )
