"""Rendering model objects back to DSL text.

The inverse of :mod:`repro.dsl.parser`: preferences, descriptors and
whole profiles render to the surface syntax, giving a human-readable
(and diff-friendly) persistence format - ``parse(render(x)) == x`` is
pinned by property-based tests.
"""

from __future__ import annotations

from repro.exceptions import ReproError
from repro.context.descriptor import (
    ContextDescriptor,
    ExtendedContextDescriptor,
    ParameterDescriptor,
)
from repro.context.environment import ContextEnvironment
from repro.preferences.preference import AttributeClause, ContextualPreference
from repro.preferences.profile import Profile
from repro.dsl.parser import parse_preference

__all__ = [
    "render_clause",
    "render_descriptor",
    "render_preference",
    "render_profile",
    "parse_profile",
]


def _literal(value: object) -> str:
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value).replace("\\", "\\\\").replace("'", "\\'")
    return f"'{text}'"


def render_clause(clause: AttributeClause) -> str:
    """``type = 'brewery'``."""
    return f"{clause.attribute} {clause.op} {_literal(clause.value)}"


def _render_condition(descriptor: ParameterDescriptor) -> str:
    name = descriptor.parameter_name
    if descriptor.kind == "equals":
        return f"{name} = {_literal(descriptor.payload[0])}"
    if descriptor.kind == "one_of":
        inner = ", ".join(_literal(value) for value in descriptor.payload)
        return f"{name} IN ({inner})"
    low, high = descriptor.payload
    return f"{name} BETWEEN {_literal(low)} AND {_literal(high)}"


def render_descriptor(
    descriptor: ContextDescriptor | ExtendedContextDescriptor,
) -> str:
    """Render a (possibly extended) descriptor; empty renders to ``""``."""
    if isinstance(descriptor, ExtendedContextDescriptor):
        return " OR ".join(
            render_descriptor(disjunct) for disjunct in descriptor.disjuncts
        )
    return " AND ".join(
        _render_condition(condition) for condition in descriptor.descriptors
    )


def render_preference(preference: ContextualPreference) -> str:
    """``PREFER <clause> SCORE <s> [WHEN <context>]``."""
    text = f"PREFER {render_clause(preference.clause)} SCORE {preference.score!r}"
    if not preference.descriptor.is_empty():
        text += f" WHEN {render_descriptor(preference.descriptor)}"
    return text


def render_profile(profile: Profile) -> str:
    """One ``PREFER`` statement per line, comment header included."""
    lines = [f"-- profile: {len(profile)} preferences"]
    lines.extend(render_preference(preference) for preference in profile)
    return "\n".join(lines) + "\n"


def parse_profile(text: str, environment: ContextEnvironment) -> Profile:
    """Parse a multi-line DSL script into a profile.

    One statement per line; blank lines and ``--`` comments are
    skipped. Conflicting statements raise, like interactive insertion.

    Raises:
        ReproError: On malformed statements (with the line number).
    """
    profile = Profile(environment)
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("--"):
            continue
        try:
            profile.add(parse_preference(line))
        except ReproError as error:
            raise type(error)(f"line {line_number}: {error}") from error
    return profile
