"""ASCII rendering of profile trees (Fig. 4, in text form).

``render_tree`` draws the tree one root-to-leaf branch per visual
block: internal cells as ``[key]`` boxes labelled by their parameter,
leaves as the stored ``(clause, score)`` payloads - handy in the REPL,
in docs, and when debugging orderings.
"""

from __future__ import annotations

from repro.tree.node import InternalNode, LeafNode
from repro.tree.profile_tree import ProfileTree

__all__ = ["render_tree"]


def render_tree(tree: ProfileTree, max_branches: int | None = None) -> str:
    """Render a profile tree as indented ASCII.

    Args:
        tree: The tree to draw.
        max_branches: Truncate after this many root-to-leaf branches
            (``None`` = draw everything).

    Example output for the paper's Fig. 4 instance::

        profile tree (order: accompanying_people > temperature > location)
        [friends]
          [warm]
            [Kifisia] -> (type = 'cafeteria'): 0.9
          [all]
            [all] -> (type = 'brewery'): 0.9
        [all]
          [warm]
            [Plaka] -> (name = 'Acropolis'): 0.8
          [hot]
            [Plaka] -> (name = 'Acropolis'): 0.8
    """
    lines = [f"profile tree (order: {' > '.join(tree.ordering)})"]
    branches_drawn = 0

    def walk(node: InternalNode | LeafNode, depth: int) -> None:
        nonlocal branches_drawn
        if isinstance(node, LeafNode):  # pragma: no cover - handled inline below
            return
        for key, child in node.cells.items():
            if max_branches is not None and branches_drawn >= max_branches:
                return
            indent = "  " * (depth + 1)
            if isinstance(child, LeafNode):
                payload = ", ".join(
                    f"{clause}: {score}" for clause, score in child.entries.items()
                )
                lines.append(f"{indent}[{key}] -> {payload}")
                branches_drawn += 1
            else:
                lines.append(f"{indent}[{key}]")
                walk(child, depth + 1)

    walk(tree.root, -1)
    if max_branches is not None and branches_drawn >= max_branches:
        remaining = tree.num_states - branches_drawn
        if remaining > 0:
            lines.append(f"  ... and {remaining} more branch(es)")
    return "\n".join(lines)
