"""The context query tree: a context-keyed cache of query results.

The paper introduces (Secs. 1 and 7) a second index "for caching the
results of queries based on their context"; the section describing it
was elided from the camera-ready, so we implement the natural design:
the same trie layout as the profile tree - one level per context
parameter, one root-to-leaf path per context state - whose leaves hold
cached, ranked result sets. A capacity bound with least-recently-used
eviction keeps the cache finite; lookups charge the same cell-access
counters as the profile tree, making the cache directly comparable in
the experiments.

Recency is tracked by insertion order of an ``OrderedDict`` (a hit or
overwrite moves the state to the back, eviction pops the front), so
eviction is O(depth) for the trie pruning rather than a scan over
every cached state. Hits, misses, evictions and invalidations are kept
as instance attributes and mirrored into the process metrics registry
(:mod:`repro.obs`).

**Thread safety.** Every cache operation (including ``get``, which
mutates recency) runs under one reentrant lock, so concurrent readers
and invalidators never corrupt the trie/dict pair. A monotonically
increasing **generation** counter, bumped by every invalidation,
closes the compute-then-put race: a caller snapshots ``generation``
before computing a result against external state (the relation, the
profile) and passes it to ``put``, which discards the entry if any
invalidation landed in between - otherwise a ranking computed against
the pre-mutation relation could be cached *after* the mutation's
invalidation and served stale forever.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.exceptions import TreeError
from repro.concurrency.locks import LEVEL_CACHE, Mutex
from repro.context.environment import ContextEnvironment
from repro.context.state import ContextState
from repro.faults.registry import get_fault_registry
from repro.hierarchy import Value
from repro.obs.metrics import get_registry
from repro.tree.counters import AccessCounter
from repro.tree.node import InternalNode
from repro.tree.ordering import validate_ordering

if TYPE_CHECKING:
    # The tree layer sits below the db layer, so the runtime dependency
    # stays duck-typed; the annotation-only import keeps the signatures
    # honest (and lets the static lock-order checker follow the edge).
    from repro.db.relation import Relation

__all__ = ["ContextQueryTree"]


class _ResultLeaf:
    """A cached result set for one context state."""

    __slots__ = ("result",)

    def __init__(self, result: object) -> None:
        self.result = result


class ContextQueryTree:
    """Cache of contextual-query results, indexed by context state.

    Args:
        environment: The context environment.
        ordering: Parameter-to-level assignment, as for the profile tree.
        capacity: Maximum number of cached states; ``None`` disables
            eviction. The least recently *used* (read or written) state
            is evicted first.

    Example:
        >>> cache = ContextQueryTree(env, capacity=100)
        >>> cache.put(state, ranked_results)
        >>> cache.get(state) is ranked_results
        True
    """

    def __init__(
        self,
        environment: ContextEnvironment,
        ordering: Sequence[str] | None = None,
        capacity: int | None = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise TreeError(f"capacity must be positive or None, got {capacity}")
        self._environment = environment
        self._ordering = validate_ordering(environment, ordering)
        self._positions = tuple(environment.index_of(name) for name in self._ordering)
        self._root = InternalNode()
        self._capacity = capacity
        # state -> leaf; ordered least- to most-recently used, so the
        # LRU victim is always the front entry (no stamp scans).
        self._leaves: OrderedDict[ContextState, _ResultLeaf] = OrderedDict()
        self._lock = Mutex(level=LEVEL_CACHE, name="query_tree")
        self._generation = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.stale_discards = 0

    @property
    def environment(self) -> ContextEnvironment:
        """The context environment the cache indexes."""
        return self._environment

    @property
    def ordering(self) -> tuple[str, ...]:
        """Parameter names from the root level down."""
        return self._ordering

    @property
    def capacity(self) -> int | None:
        """Maximum number of cached states (``None`` = unbounded)."""
        return self._capacity

    @property
    def generation(self) -> int:
        """Invalidation epoch: bumped by every invalidation/clear.

        Snapshot it before computing a result and pass the snapshot to
        :meth:`put` to make compute-then-cache safe against concurrent
        invalidation.
        """
        with self._lock:
            return self._generation

    def __len__(self) -> int:
        return len(self._leaves)

    def __contains__(self, state: object) -> bool:
        return state in self._leaves

    def _project(self, state: ContextState) -> tuple[Value, ...]:
        return tuple(state.values[position] for position in self._positions)

    # ------------------------------------------------------------------
    # Cache operations
    # ------------------------------------------------------------------
    def get(
        self, state: ContextState, counter: AccessCounter | None = None
    ) -> object | None:
        """The cached result for ``state``, or ``None`` on a miss.

        A hit refreshes the state's recency. Cell accesses along the
        root-to-leaf traversal are charged to ``counter``.

        Under an active fault plan, the ``cache.get`` injection site
        applies to *hits*: the read may raise, stall, or hand back a
        :class:`~repro.faults.CorruptedValue` wrapper that callers'
        integrity checks must reject (see
        :class:`repro.exceptions.CachePoisonedError`).
        """
        with self._lock:
            path = self._project(state)
            node = self._root
            for key in path[:-1]:
                found = node.find(key, counter)
                if found is None:
                    self._miss()
                    return None
                if not isinstance(found, InternalNode):  # pragma: no cover
                    raise TreeError("malformed query tree")
                node = found
            if node.find(path[-1], counter) is None:
                self._miss()
                return None
            leaf = self._leaves.get(state)
            if leaf is None:  # pragma: no cover - trie and dict stay in sync
                self._miss()
                return None
            self._leaves.move_to_end(state)
            self.hits += 1
            registry = get_registry()
            if registry.enabled:
                registry.inc("cache.hits")
            faults = get_fault_registry()
            if faults.enabled:
                return faults.corrupt("cache.get", leaf.result)
            return leaf.result

    def _miss(self) -> None:
        self.misses += 1
        registry = get_registry()
        if registry.enabled:
            registry.inc("cache.misses")

    def put(
        self,
        state: ContextState,
        result: object,
        generation: int | None = None,
    ) -> None:
        """Cache ``result`` for ``state``, evicting the LRU state if full.

        ``generation`` (from :attr:`generation`, snapshotted before the
        result was computed) makes the insert conditional: if any
        invalidation happened since the snapshot, the entry is stale by
        construction and discarded - counted in ``stale_discards`` and
        the ``cache.stale_discards`` metric, so the rate of wasted
        computes under write pressure is observable.
        """
        faults = get_fault_registry()
        if faults.enabled:
            faults.fire("cache.put")
        with self._lock:
            if generation is not None and generation != self._generation:
                self.stale_discards += 1
                registry = get_registry()
                if registry.enabled:
                    registry.inc("cache.stale_discards")
                return
            existing = self._leaves.get(state)
            if existing is not None:
                existing.result = result
                self._leaves.move_to_end(state)
                return
            if self._capacity is not None and len(self._leaves) >= self._capacity:
                self._evict_lru()
            leaf = _ResultLeaf(result)
            node = self._root
            path = self._project(state)
            for key in path[:-1]:
                child = node.child(key)
                if child is None:
                    child = InternalNode()
                    node.add_cell(key, child)
                if not isinstance(child, InternalNode):  # pragma: no cover
                    raise TreeError("malformed query tree")
                node = child
            node.add_cell(path[-1], leaf)  # type: ignore[arg-type]
            self._leaves[state] = leaf

    def watch(self, relation: "Relation") -> None:
        """Drop all cached results whenever ``relation`` is mutated.

        Cached leaves hold ranked result sets computed *against* the
        relation, so an insert after cache-fill would otherwise keep
        serving stale rankings. The hook registers an idempotent
        mutation listener on the relation (see
        :meth:`repro.db.Relation.add_mutation_listener`); watching the
        same relation twice is a no-op.

        Every ``watch`` must be paired with :meth:`unwatch` when the
        cache is retired (e.g. its owning user unregisters), or the
        relation keeps a reference to the dead cache and notifies it on
        every insert.
        """
        relation.add_mutation_listener(self._on_relation_mutated)

    def unwatch(self, relation: "Relation") -> None:
        """Stop invalidating on ``relation``'s mutations."""
        relation.remove_mutation_listener(self._on_relation_mutated)

    def _on_relation_mutated(self, relation: "Relation") -> None:
        if self._leaves:
            self.clear()

    def invalidate(self, state: ContextState) -> bool:
        """Drop the cached result for ``state``; True if one existed."""
        with self._lock:
            self._generation += 1
            if state not in self._leaves:
                return False
            self._remove(state)
            self._count_invalidations(1)
            return True

    def invalidate_covered(self, covering: ContextState) -> int:
        """Drop every cached state that ``covering`` covers (Def. 10).

        This is the precise invalidation rule for preference edits: a
        preference whose descriptor produces state ``s`` only affects
        queries resolved at states covered by ``s``. Returns the number
        of entries dropped.

        The trie is walked top-down following only the cells whose key
        equals the covering value or descends from it, so the cost is
        bounded by the affected subtrees rather than the cache size.
        """
        if covering.environment.names != self._environment.names:
            raise TreeError(
                "covering state belongs to a different context environment"
            )
        with self._lock:
            return self._invalidate_covered(covering)

    def _invalidate_covered(self, covering: ContextState) -> int:
        self._generation += 1
        projected = self._project(covering)
        parameters = [
            self._environment[name] for name in self._ordering
        ]
        victims: list[ContextState] = []

        def walk(node: InternalNode, depth: int, path: list[Value]) -> None:
            cover_value = projected[depth]
            hierarchy = parameters[depth].hierarchy
            for key, child in node.cells.items():
                if key != cover_value and not hierarchy.is_ancestor(cover_value, key):
                    continue
                path.append(key)
                if depth == len(projected) - 1:
                    # child is a result leaf; rebuild the state key.
                    values: list[Value] = [None] * len(path)  # type: ignore[list-item]
                    for value, name in zip(path, self._ordering):
                        values[self._environment.index_of(name)] = value
                    victims.append(ContextState(self._environment, values))
                else:
                    walk(child, depth + 1, path)  # type: ignore[arg-type]
                path.pop()

        walk(self._root, 0, [])
        for victim in victims:
            self._remove(victim)
        self._count_invalidations(len(victims))
        return len(victims)

    def clear(self) -> None:
        """Empty the cache (statistics are preserved; the dropped
        entries count as invalidations)."""
        with self._lock:
            self._generation += 1
            self._count_invalidations(len(self._leaves))
            self._root = InternalNode()
            self._leaves.clear()

    def _count_invalidations(self, dropped: int) -> None:
        if not dropped:
            return
        self.invalidations += dropped
        registry = get_registry()
        if registry.enabled:
            registry.inc("cache.invalidations", dropped)

    def _evict_lru(self) -> None:
        victim = next(iter(self._leaves))
        self._remove(victim)
        self.evictions += 1
        registry = get_registry()
        if registry.enabled:
            registry.inc("cache.evictions")

    def _remove(self, state: ContextState) -> None:
        del self._leaves[state]
        path = self._project(state)
        # Walk down recording the spine, then prune empty nodes upward.
        spine: list[tuple[InternalNode, Value]] = []
        node = self._root
        for key in path[:-1]:
            spine.append((node, key))
            child = node.child(key)
            if not isinstance(child, InternalNode):  # pragma: no cover
                raise TreeError("malformed query tree")
            node = child
        spine.append((node, path[-1]))
        # Remove the leaf cell, then any interior node left empty.
        parent, key = spine.pop()
        del parent.cells[key]
        while spine and parent.num_cells() == 0:
            parent, key = spine.pop()
            del parent.cells[key]

    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when no lookups yet)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def statistics(self) -> dict[str, int | float]:
        """One consistent snapshot of the cache counters."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "states": len(self._leaves),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "stale_discards": self.stale_discards,
                "generation": self._generation,
            }

    def __repr__(self) -> str:
        return (
            f"ContextQueryTree(states={len(self._leaves)}, "
            f"capacity={self._capacity}, hit_rate={self.hit_rate():.2f})"
        )
