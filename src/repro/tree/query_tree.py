"""The context query tree: a context-keyed cache of query results.

The paper introduces (Secs. 1 and 7) a second index "for caching the
results of queries based on their context"; the section describing it
was elided from the camera-ready, so we implement the natural design:
the same trie layout as the profile tree - one level per context
parameter, one root-to-leaf path per context state - whose leaves hold
cached, ranked result sets. A capacity bound with least-recently-used
eviction keeps the cache finite; lookups charge the same cell-access
counters as the profile tree, making the cache directly comparable in
the experiments.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import TreeError
from repro.context.environment import ContextEnvironment
from repro.context.state import ContextState
from repro.hierarchy import Value
from repro.tree.counters import AccessCounter
from repro.tree.node import InternalNode
from repro.tree.ordering import validate_ordering

__all__ = ["ContextQueryTree"]


class _ResultLeaf:
    """A cached result set for one context state."""

    __slots__ = ("result", "stamp")

    def __init__(self, result: object, stamp: int) -> None:
        self.result = result
        self.stamp = stamp


class ContextQueryTree:
    """Cache of contextual-query results, indexed by context state.

    Args:
        environment: The context environment.
        ordering: Parameter-to-level assignment, as for the profile tree.
        capacity: Maximum number of cached states; ``None`` disables
            eviction. The least recently *used* (read or written) state
            is evicted first.

    Example:
        >>> cache = ContextQueryTree(env, capacity=100)
        >>> cache.put(state, ranked_results)
        >>> cache.get(state) is ranked_results
        True
    """

    def __init__(
        self,
        environment: ContextEnvironment,
        ordering: Sequence[str] | None = None,
        capacity: int | None = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise TreeError(f"capacity must be positive or None, got {capacity}")
        self._environment = environment
        self._ordering = validate_ordering(environment, ordering)
        self._positions = tuple(environment.index_of(name) for name in self._ordering)
        self._root = InternalNode()
        self._capacity = capacity
        self._clock = 0
        # state -> leaf, for O(1) recency updates and eviction.
        self._leaves: dict[ContextState, _ResultLeaf] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def environment(self) -> ContextEnvironment:
        """The context environment the cache indexes."""
        return self._environment

    @property
    def ordering(self) -> tuple[str, ...]:
        """Parameter names from the root level down."""
        return self._ordering

    @property
    def capacity(self) -> int | None:
        """Maximum number of cached states (``None`` = unbounded)."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._leaves)

    def __contains__(self, state: object) -> bool:
        return state in self._leaves

    def _project(self, state: ContextState) -> tuple[Value, ...]:
        return tuple(state.values[position] for position in self._positions)

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    # ------------------------------------------------------------------
    # Cache operations
    # ------------------------------------------------------------------
    def get(
        self, state: ContextState, counter: AccessCounter | None = None
    ) -> object | None:
        """The cached result for ``state``, or ``None`` on a miss.

        A hit refreshes the state's recency. Cell accesses along the
        root-to-leaf traversal are charged to ``counter``.
        """
        path = self._project(state)
        node = self._root
        for key in path[:-1]:
            found = node.find(key, counter)
            if found is None:
                self.misses += 1
                return None
            if not isinstance(found, InternalNode):  # pragma: no cover
                raise TreeError("malformed query tree")
            node = found
        if node.find(path[-1], counter) is None:
            self.misses += 1
            return None
        leaf = self._leaves.get(state)
        if leaf is None:  # pragma: no cover - trie and dict stay in sync
            self.misses += 1
            return None
        leaf.stamp = self._tick()
        self.hits += 1
        return leaf.result

    def put(self, state: ContextState, result: object) -> None:
        """Cache ``result`` for ``state``, evicting the LRU state if full."""
        existing = self._leaves.get(state)
        if existing is not None:
            existing.result = result
            existing.stamp = self._tick()
            return
        if self._capacity is not None and len(self._leaves) >= self._capacity:
            self._evict_lru()
        leaf = _ResultLeaf(result, self._tick())
        node = self._root
        path = self._project(state)
        for key in path[:-1]:
            child = node.child(key)
            if child is None:
                child = InternalNode()
                node.add_cell(key, child)
            if not isinstance(child, InternalNode):  # pragma: no cover
                raise TreeError("malformed query tree")
            node = child
        node.add_cell(path[-1], leaf)  # type: ignore[arg-type]
        self._leaves[state] = leaf

    def watch(self, relation) -> None:
        """Drop all cached results whenever ``relation`` is mutated.

        Cached leaves hold ranked result sets computed *against* the
        relation, so an insert after cache-fill would otherwise keep
        serving stale rankings. The hook registers an idempotent
        mutation listener on the relation (see
        :meth:`repro.db.Relation.add_mutation_listener`); watching the
        same relation twice is a no-op.
        """
        relation.add_mutation_listener(self._on_relation_mutated)

    def unwatch(self, relation) -> None:
        """Stop invalidating on ``relation``'s mutations."""
        relation.remove_mutation_listener(self._on_relation_mutated)

    def _on_relation_mutated(self, relation) -> None:
        if self._leaves:
            self.clear()

    def invalidate(self, state: ContextState) -> bool:
        """Drop the cached result for ``state``; True if one existed."""
        if state not in self._leaves:
            return False
        self._remove(state)
        return True

    def invalidate_covered(self, covering: ContextState) -> int:
        """Drop every cached state that ``covering`` covers (Def. 10).

        This is the precise invalidation rule for preference edits: a
        preference whose descriptor produces state ``s`` only affects
        queries resolved at states covered by ``s``. Returns the number
        of entries dropped.

        The trie is walked top-down following only the cells whose key
        equals the covering value or descends from it, so the cost is
        bounded by the affected subtrees rather than the cache size.
        """
        if covering.environment.names != self._environment.names:
            raise TreeError(
                "covering state belongs to a different context environment"
            )
        projected = self._project(covering)
        parameters = [
            self._environment[name] for name in self._ordering
        ]
        victims: list[ContextState] = []

        def walk(node: InternalNode, depth: int, path: list[Value]) -> None:
            cover_value = projected[depth]
            hierarchy = parameters[depth].hierarchy
            for key, child in node.cells.items():
                if key != cover_value and not hierarchy.is_ancestor(cover_value, key):
                    continue
                path.append(key)
                if depth == len(projected) - 1:
                    # child is a result leaf; rebuild the state key.
                    values: list[Value] = [None] * len(path)  # type: ignore[list-item]
                    for value, name in zip(path, self._ordering):
                        values[self._environment.index_of(name)] = value
                    victims.append(ContextState(self._environment, values))
                else:
                    walk(child, depth + 1, path)  # type: ignore[arg-type]
                path.pop()

        walk(self._root, 0, [])
        for victim in victims:
            self._remove(victim)
        return len(victims)

    def clear(self) -> None:
        """Empty the cache (statistics are preserved)."""
        self._root = InternalNode()
        self._leaves.clear()

    def _evict_lru(self) -> None:
        victim = min(self._leaves, key=lambda state: self._leaves[state].stamp)
        self._remove(victim)
        self.evictions += 1

    def _remove(self, state: ContextState) -> None:
        del self._leaves[state]
        path = self._project(state)
        # Walk down recording the spine, then prune empty nodes upward.
        spine: list[tuple[InternalNode, Value]] = []
        node = self._root
        for key in path[:-1]:
            spine.append((node, key))
            child = node.child(key)
            if not isinstance(child, InternalNode):  # pragma: no cover
                raise TreeError("malformed query tree")
            node = child
        spine.append((node, path[-1]))
        # Remove the leaf cell, then any interior node left empty.
        parent, key = spine.pop()
        del parent.cells[key]
        while spine and parent.num_cells() == 0:
            parent, key = spine.pop()
            del parent.cells[key]

    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when no lookups yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"ContextQueryTree(states={len(self._leaves)}, "
            f"capacity={self._capacity}, hit_rate={self.hit_rate():.2f})"
        )
