"""Cell-access accounting.

The paper's performance study (Sec. 5.2, Fig. 7) measures *cell
accesses* - how many ``[key, pointer]`` cells (or sequential-record
cells) an algorithm touches - rather than wall-clock time. Every
search-path operation in this library threads an optional
:class:`AccessCounter` so experiments can observe exactly that metric
without perturbing the algorithms.
"""

from __future__ import annotations

__all__ = ["AccessCounter"]


class AccessCounter:
    """Counts cell accesses; shared by tree and sequential searches.

    Example:
        >>> counter = AccessCounter()
        >>> counter.add(3)
        >>> counter.cells
        3
    """

    __slots__ = ("cells",)

    def __init__(self) -> None:
        self.cells = 0

    def add(self, count: int = 1) -> None:
        """Record ``count`` additional cell accesses."""
        self.cells += count

    def reset(self) -> None:
        """Zero the counter."""
        self.cells = 0

    def __repr__(self) -> str:
        return f"AccessCounter(cells={self.cells})"
