"""Cell-access accounting.

The paper's performance study (Sec. 5.2, Fig. 7) measures *cell
accesses* - how many ``[key, pointer]`` cells (or sequential-record
cells) an algorithm touches - rather than wall-clock time. Every
search-path operation in this library threads an optional
:class:`AccessCounter` so experiments can observe exactly that metric
without perturbing the algorithms.

Selections over relations charge the same counter but keep two
sub-tallies: ``scan_cells`` for tuple-at-a-time sequential scans and
``index_cells`` for probes of an attribute index (hash buckets,
``bisect`` comparisons and the ``[key, row-id]`` cells of the posting
lists). ``cells`` always remains the grand total, so existing
experiments keep their numbers while the ranking experiments can report
indexed vs. sequential cost side by side.
"""

from __future__ import annotations

__all__ = ["AccessCounter"]


class AccessCounter:
    """Counts cell accesses; shared by tree, sequential and index paths.

    Attributes:
        cells: Total cell accesses (every category included).
        scan_cells: Accesses charged by sequential relation scans.
        index_cells: Accesses charged by attribute-index probes.

    Example:
        >>> counter = AccessCounter()
        >>> counter.add(3)
        >>> counter.cells
        3
        >>> counter.add_indexed(2)
        >>> (counter.cells, counter.index_cells)
        (5, 2)
    """

    __slots__ = ("cells", "scan_cells", "index_cells")

    def __init__(self) -> None:
        self.cells = 0
        self.scan_cells = 0
        self.index_cells = 0

    def add(self, count: int = 1) -> None:
        """Record ``count`` additional (uncategorised) cell accesses."""
        self.cells += count

    def add_scan(self, count: int = 1) -> None:
        """Record ``count`` sequential-scan cell accesses."""
        self.cells += count
        self.scan_cells += count

    def add_indexed(self, count: int = 1) -> None:
        """Record ``count`` index-probe cell accesses."""
        self.cells += count
        self.index_cells += count

    def reset(self) -> None:
        """Zero the counter (all categories)."""
        self.cells = 0
        self.scan_cells = 0
        self.index_cells = 0

    def __repr__(self) -> str:
        return (
            f"AccessCounter(cells={self.cells}, scan={self.scan_cells}, "
            f"indexed={self.index_cells})"
        )
