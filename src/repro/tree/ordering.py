"""Parameter-to-level orderings for the profile tree (Sec. 3.3).

The assignment of context parameters to tree levels determines the
tree's size: the paper's worst-case cell count
``m1 * (1 + m2 * (1 + ... (1 + mn)))`` is minimised when domains grow
from root to leaves, i.e. parameters with larger domains sit lower.
This module validates orderings, enumerates them, computes the paper's
bound, and derives the size-optimal ordering.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Sequence

from repro.exceptions import OrderingError
from repro.context.environment import ContextEnvironment

__all__ = [
    "validate_ordering",
    "all_orderings",
    "optimal_ordering",
    "worst_case_cells",
]


def validate_ordering(
    environment: ContextEnvironment, ordering: Sequence[str] | None
) -> tuple[str, ...]:
    """Check that ``ordering`` is a permutation of the environment's
    parameter names; ``None`` means declaration order.

    Returns:
        The ordering as a tuple of parameter names, root level first.

    Raises:
        OrderingError: If the ordering is not a permutation.
    """
    if ordering is None:
        return environment.names
    ordering = tuple(ordering)
    if sorted(ordering) != sorted(environment.names):
        raise OrderingError(
            f"ordering {list(ordering)} is not a permutation of the "
            f"environment parameters {list(environment.names)}"
        )
    return ordering


def all_orderings(environment: ContextEnvironment) -> Iterator[tuple[str, ...]]:
    """Every permutation of the environment's parameter names."""
    yield from itertools.permutations(environment.names)


def optimal_ordering(environment: ContextEnvironment, extended: bool = True) -> tuple[str, ...]:
    """The size-optimal ordering: domains ascending from root to leaves.

    Args:
        extended: Rank parameters by extended-domain size (default),
            which is what the tree actually stores; ``False`` ranks by
            detailed-domain size.
    """
    def cardinality(name: str) -> int:
        parameter = environment[name]
        return len(parameter.edom) if extended else len(parameter.dom)

    return tuple(sorted(environment.names, key=lambda name: (cardinality(name), name)))


def worst_case_cells(cardinalities: Sequence[int]) -> int:
    """The paper's bound ``m1 * (1 + m2 * (1 + ... (1 + mn)))``.

    ``cardinalities`` lists the per-level domain sizes from the root
    level down.
    """
    if not cardinalities:
        raise OrderingError("need at least one cardinality")
    if any(m <= 0 for m in cardinalities):
        raise OrderingError(f"cardinalities must be positive: {list(cardinalities)}")
    total = cardinalities[-1]
    for m in reversed(cardinalities[:-1]):
        total = m * (1 + total)
    return total
