"""Indexing structures: profile tree, query tree, orderings, cost model."""

from repro.tree.advisor import OrderingAdvice, active_domain_sizes, recommend_ordering
from repro.tree.cost import SerialSize, StorageCostModel, TreeSize
from repro.tree.counters import AccessCounter
from repro.tree.node import InternalNode, LeafNode
from repro.tree.ordering import (
    all_orderings,
    optimal_ordering,
    validate_ordering,
    worst_case_cells,
)
from repro.tree.profile_tree import ProfileTree
from repro.tree.query_tree import ContextQueryTree
from repro.tree.visualize import render_tree

__all__ = [
    "AccessCounter",
    "ContextQueryTree",
    "InternalNode",
    "LeafNode",
    "OrderingAdvice",
    "ProfileTree",
    "SerialSize",
    "StorageCostModel",
    "TreeSize",
    "active_domain_sizes",
    "all_orderings",
    "optimal_ordering",
    "recommend_ordering",
    "render_tree",
    "validate_ordering",
    "worst_case_cells",
]
