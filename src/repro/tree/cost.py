"""Storage cost model for profile trees vs. sequential storage.

The paper reports tree sizes both in *cells* and in *bytes* (Fig. 5)
without spelling out its record layout. We make the layout an explicit,
configurable cost model:

* an internal tree cell is a ``key`` plus a ``pointer``;
* a leaf entry is an ``attribute`` id, a ``value`` and a ``score``;
* a sequential record stores one context state flat - ``n`` context
  value cells plus one leaf-payload cell - with no pointers.

The all-4-byte defaults are calibrated so the sequential layout of the
522-preference real profile lands at ~12.5 KB, matching Fig. 5 (right);
the constants only scale the byte axis and callers may override them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.preferences.profile import Profile
from repro.tree.profile_tree import ProfileTree

__all__ = ["StorageCostModel", "TreeSize", "SerialSize"]


@dataclass(frozen=True)
class TreeSize:
    """Measured size of a profile tree."""

    internal_cells: int
    leaf_entries: int
    num_bytes: int

    @property
    def cells(self) -> int:
        """Total cells: internal ``[key, pointer]`` cells + leaf entries."""
        return self.internal_cells + self.leaf_entries


@dataclass(frozen=True)
class SerialSize:
    """Measured size of the sequential (flat) representation."""

    records: int
    cells: int
    num_bytes: int


@dataclass(frozen=True)
class StorageCostModel:
    """Byte widths for the storage layout.

    Attributes:
        key_bytes: One context-value key in an internal cell.
        pointer_bytes: One child pointer in an internal cell.
        attribute_bytes: The attribute id of a leaf payload.
        value_bytes: The attribute value of a leaf payload.
        score_bytes: The interest score of a leaf payload.
    """

    key_bytes: int = 4
    pointer_bytes: int = 4
    attribute_bytes: int = 4
    value_bytes: int = 4
    score_bytes: int = 4

    def leaf_entry_bytes(self) -> int:
        """Bytes of one leaf payload entry."""
        return self.attribute_bytes + self.value_bytes + self.score_bytes

    def tree_size(self, tree: ProfileTree) -> TreeSize:
        """Cells and bytes of a profile tree."""
        internal_cells = tree.num_internal_cells()
        leaf_entries = tree.num_leaf_entries()
        num_bytes = (
            internal_cells * (self.key_bytes + self.pointer_bytes)
            + leaf_entries * self.leaf_entry_bytes()
        )
        return TreeSize(internal_cells, leaf_entries, num_bytes)

    def serial_size(self, profile: Profile) -> SerialSize:
        """Cells and bytes of the flat, one-record-per-state layout.

        Every ``(state, clause, score)`` record of the profile costs
        ``n`` context-value cells plus one payload cell; no sharing
        occurs between records, which is exactly the paper's
        "storing preferences sequentially" baseline.
        """
        n = len(profile.environment)
        records = sum(1 for _ in profile.entries())
        cells = records * (n + 1)
        num_bytes = records * (n * self.key_bytes + self.leaf_entry_bytes())
        return SerialSize(records, cells, num_bytes)
