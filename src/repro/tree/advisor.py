"""Ordering advisor: pick the parameter-to-level assignment for a profile.

Sec. 3.3's rule of thumb - larger domains lower in the tree - minimises
the *worst-case* cell count, but the paper's own skew experiment
(Fig. 6 right) shows the rule can invert: "if a parameter has a very
skewed data distribution, it may be more space efficient to map it
higher in the tree, even if its domain is large", because what matters
is how many *distinct* values actually reach each tree level.

The advisor offers three strategies:

* ``domain``  - the static heuristic: ascending extended-domain size;
* ``active``  - ascending number of distinct values *observed in the
  profile* (captures skew without building any tree);
* ``exact``   - build every candidate tree and measure (n! trees; only
  sensible for the paper-sized n <= ~5).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.exceptions import OrderingError
from repro.preferences.profile import Profile
from repro.tree.cost import StorageCostModel
from repro.tree.ordering import optimal_ordering
from repro.tree.profile_tree import ProfileTree

__all__ = ["OrderingAdvice", "active_domain_sizes", "recommend_ordering"]

_STRATEGIES = ("domain", "active", "exact")


@dataclass(frozen=True)
class OrderingAdvice:
    """The advisor's output.

    Attributes:
        ordering: Recommended parameter names, root level first.
        strategy: The strategy that produced it.
        cells: Measured cell count of the tree under the recommended
            ordering (always measured, whatever the strategy).
    """

    ordering: tuple[str, ...]
    strategy: str
    cells: int


def active_domain_sizes(profile: Profile) -> dict[str, int]:
    """Distinct values of each parameter across the profile's states.

    This is the "active domain" the paper's skew experiment implicitly
    ranks by: a heavily skewed parameter has a small active domain even
    when its declared domain is large.
    """
    environment = profile.environment
    seen: dict[str, set] = {name: set() for name in environment.names}
    for state in profile.states():
        for name, value in zip(environment.names, state.values):
            seen[name].add(value)
    return {name: len(values) for name, values in seen.items()}


def _measure(profile: Profile, ordering: tuple[str, ...]) -> int:
    tree = ProfileTree.from_profile(profile, ordering)
    return StorageCostModel().tree_size(tree).cells


def recommend_ordering(
    profile: Profile, strategy: str = "active"
) -> OrderingAdvice:
    """Recommend a parameter-to-level ordering for ``profile``.

    Args:
        profile: The profile to index.
        strategy: ``"domain"``, ``"active"`` (default) or ``"exact"``.

    Raises:
        OrderingError: On unknown strategies, or ``"exact"`` with more
            than six parameters (6! = 720 candidate trees is the cap).
    """
    if strategy not in _STRATEGIES:
        raise OrderingError(
            f"unknown strategy {strategy!r}; expected one of {_STRATEGIES}"
        )
    environment = profile.environment
    if strategy == "domain":
        ordering = optimal_ordering(environment)
    elif strategy == "active":
        sizes = active_domain_sizes(profile)
        ordering = tuple(
            sorted(environment.names, key=lambda name: (sizes[name], name))
        )
    else:
        if len(environment) > 6:
            raise OrderingError(
                "exact strategy enumerates n! trees; use 'active' for "
                f"{len(environment)} parameters"
            )
        ordering = min(
            itertools.permutations(environment.names),
            key=lambda candidate: _measure(profile, candidate),
        )
    return OrderingAdvice(
        ordering=ordering, strategy=strategy, cells=_measure(profile, ordering)
    )
