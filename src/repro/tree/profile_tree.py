"""The profile tree: an index of preferences by context state (Sec. 3.3).

One tree level per context parameter (in a configurable order), one
root-to-leaf path per context state appearing in the profile, and leaf
payloads carrying the applicable ``attribute clause, score`` pairs.
Conflicting preferences (Def. 6) are detected during insertion by a
single root-to-leaf traversal per state, exactly as in the paper.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.exceptions import ConflictError, TreeError
from repro.context.environment import ContextEnvironment, ContextParameter
from repro.context.state import ContextState
from repro.hierarchy import Value
from repro.preferences.preference import AttributeClause, ContextualPreference
from repro.preferences.profile import Profile
from repro.tree.counters import AccessCounter
from repro.tree.node import InternalNode, LeafNode
from repro.tree.ordering import validate_ordering

__all__ = ["ProfileTree"]


class ProfileTree:
    """Index of a profile's contextual preferences by context state.

    Args:
        environment: The context environment.
        ordering: Parameter names from the root level down; defaults to
            the environment's declaration order. The ordering changes
            the tree's size but not its answers.

    Example:
        >>> tree = ProfileTree(env, ordering=("accompanying_people",
        ...                                   "temperature", "location"))
        >>> tree.insert(preference)
        >>> tree.exact_lookup(state)
        {(type = 'cafeteria'): 0.9}
    """

    def __init__(
        self,
        environment: ContextEnvironment,
        ordering: Sequence[str] | None = None,
    ) -> None:
        self._environment = environment
        self._ordering = validate_ordering(environment, ordering)
        self._positions = tuple(
            environment.index_of(name) for name in self._ordering
        )
        self._root = InternalNode()
        self._num_states = 0
        self._num_preferences = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def environment(self) -> ContextEnvironment:
        """The context environment the tree indexes."""
        return self._environment

    @property
    def ordering(self) -> tuple[str, ...]:
        """Parameter names from the root level down."""
        return self._ordering

    @property
    def root(self) -> InternalNode:
        """The root node (level of the first ordered parameter)."""
        return self._root

    @property
    def height(self) -> int:
        """Number of levels including the leaf level (``n + 1``)."""
        return len(self._ordering) + 1

    @property
    def num_states(self) -> int:
        """Number of distinct context states (root-to-leaf paths)."""
        return self._num_states

    @property
    def num_preferences(self) -> int:
        """Number of preferences inserted (idempotent re-inserts excluded)."""
        return self._num_preferences

    def parameter_at_level(self, level: int) -> ContextParameter:
        """The context parameter mapped to tree level ``level`` (0-based)."""
        return self._environment[self._ordering[level]]

    def project(self, state: ContextState) -> tuple[Value, ...]:
        """Reorder a state's values into this tree's level order.

        Raises:
            TreeError: If the state belongs to a different environment
                (silently mis-projecting would corrupt answers).
        """
        if state.environment.names != self._environment.names:
            raise TreeError(
                f"state over {state.environment.names} does not fit a tree "
                f"over {self._environment.names}"
            )
        return tuple(state.values[position] for position in self._positions)

    def unproject(self, path: Sequence[Value]) -> ContextState:
        """Rebuild a :class:`ContextState` from a root-to-leaf key path."""
        values: list[Value] = [None] * len(self._positions)  # type: ignore[list-item]
        for key, position in zip(path, self._positions):
            values[position] = key
        return ContextState(self._environment, values)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_profile(
        cls,
        profile: Profile,
        ordering: Sequence[str] | None = None,
    ) -> "ProfileTree":
        """Build a tree over every preference of ``profile``."""
        tree = cls(profile.environment, ordering)
        for preference in profile:
            tree.insert(preference)
        return tree

    def insert(self, preference: ContextualPreference) -> None:
        """Insert a preference, one path per context state of its
        descriptor, rejecting conflicts (Def. 6).

        The conflict check runs first for *all* states, so a rejected
        preference leaves the tree untouched; an identical re-insert is
        a no-op for the paths that already exist.
        """
        states = preference.descriptor.states(self._environment)
        for state in states:
            self._check_conflict(state, preference.clause, preference.score)
        inserted_new_payload = False
        for state in states:
            if self._insert_state(state, preference.clause, preference.score):
                inserted_new_payload = True
        if inserted_new_payload:
            self._num_preferences += 1

    def _check_conflict(
        self, state: ContextState, clause: AttributeClause, score: float
    ) -> None:
        leaf = self._descend(state)
        if leaf is None:
            return
        existing = leaf.entries.get(clause)
        if existing is not None and existing != score:
            raise ConflictError(
                f"conflict at state {state!r}: clause {clause!r} already has "
                f"score {existing}, refusing {score}"
            )

    def _insert_state(
        self, state: ContextState, clause: AttributeClause, score: float
    ) -> bool:
        node: InternalNode = self._root
        path = self.project(state)
        for depth, key in enumerate(path):
            child = node.child(key)
            if child is None:
                child = LeafNode() if depth == len(path) - 1 else InternalNode()
                node.add_cell(key, child)
            if depth == len(path) - 1:
                leaf = child
                break
            node = child  # type: ignore[assignment]
        else:  # pragma: no cover - paths always have >= 1 key
            raise TreeError("cannot insert a state with no values")
        if not isinstance(leaf, LeafNode):
            raise TreeError("malformed tree: internal node at leaf depth")
        if not leaf.entries:
            self._num_states += 1
        if clause in leaf.entries:
            return False
        leaf.entries[clause] = score
        return True

    def remove(self, preference: ContextualPreference) -> bool:
        """Remove a preference's payloads, pruning now-empty paths.

        Returns True if anything was removed. A payload is only removed
        when both the clause *and* the score match, so two non-identical
        preferences sharing a clause cannot delete each other. Mirrors
        :meth:`Profile.remove` for keeping tree and profile in sync
        during profile editing.
        """
        removed_any = False
        for state in preference.descriptor.states(self._environment):
            if self._remove_state(state, preference.clause, preference.score):
                removed_any = True
        return removed_any

    def _remove_state(
        self, state: ContextState, clause: AttributeClause, score: float
    ) -> bool:
        path = self.project(state)
        spine: list[tuple[InternalNode, Value]] = []
        node: InternalNode | LeafNode = self._root
        for key in path:
            if not isinstance(node, InternalNode):
                raise TreeError("malformed tree: leaf reached too early")
            child = node.child(key)
            if child is None:
                return False
            spine.append((node, key))
            node = child
        if not isinstance(node, LeafNode):
            raise TreeError("malformed tree: internal node at leaf depth")
        if node.entries.get(clause) != score:
            return False
        del node.entries[clause]
        if not node.entries:
            self._num_states -= 1
            parent, key = spine.pop()
            del parent.cells[key]
            while spine and parent.num_cells() == 0:
                parent, key = spine.pop()
                del parent.cells[key]
        return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _descend(
        self, state: ContextState, counter: AccessCounter | None = None
    ) -> LeafNode | None:
        node: InternalNode | LeafNode | None = self._root
        for key in self.project(state):
            if not isinstance(node, InternalNode):
                raise TreeError("malformed tree: leaf reached too early")
            node = node.find(key, counter)
            if node is None:
                return None
        if node is self._root:  # empty environment cannot happen, but be safe
            return None
        if not isinstance(node, LeafNode):
            raise TreeError("malformed tree: internal node at leaf depth")
        return node

    def exact_lookup(
        self, state: ContextState, counter: AccessCounter | None = None
    ) -> dict[AttributeClause, float] | None:
        """The payloads stored at exactly ``state``, or ``None``.

        This is the paper's exact-match resolution: a single
        root-to-leaf traversal whose cost is charged to ``counter``.
        """
        leaf = self._descend(state, counter)
        if leaf is None:
            return None
        return dict(leaf.entries)

    def contains_state(self, state: ContextState) -> bool:
        """True iff the tree stores a path for ``state``."""
        return self._descend(state) is not None

    # ------------------------------------------------------------------
    # Statistics and iteration
    # ------------------------------------------------------------------
    def num_internal_cells(self) -> int:
        """Total ``[key, pointer]`` cells across internal nodes."""
        total = 0
        stack: list[InternalNode] = [self._root]
        while stack:
            node = stack.pop()
            total += node.num_cells()
            for child in node.cells.values():
                if isinstance(child, InternalNode):
                    stack.append(child)
        return total

    def num_leaf_entries(self) -> int:
        """Total payload entries across leaves."""
        return sum(leaf.num_entries() for leaf in self._leaves())

    def num_nodes(self) -> int:
        """Total node count (internal + leaves), including the root."""
        total = 0
        stack: list[InternalNode | LeafNode] = [self._root]
        while stack:
            node = stack.pop()
            total += 1
            if isinstance(node, InternalNode):
                stack.extend(node.cells.values())
        return total

    def _leaves(self) -> Iterator[LeafNode]:
        stack: list[InternalNode | LeafNode] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, LeafNode):
                yield node
            else:
                stack.extend(node.cells.values())

    def items(self) -> Iterator[tuple[ContextState, AttributeClause, float]]:
        """Yield every stored ``(state, clause, score)`` record."""
        def walk(
            node: InternalNode | LeafNode, path: list[Value]
        ) -> Iterator[tuple[ContextState, AttributeClause, float]]:
            if isinstance(node, LeafNode):
                state = self.unproject(path)
                for clause, score in node.entries.items():
                    yield state, clause, score
                return
            for key, child in node.cells.items():
                path.append(key)
                yield from walk(child, path)
                path.pop()

        yield from walk(self._root, [])

    def states(self) -> Iterator[ContextState]:
        """Yield every indexed context state (one per leaf)."""
        seen_last: ContextState | None = None
        for state, _clause, _score in self.items():
            if state != seen_last:
                seen_last = state
                yield state

    def __repr__(self) -> str:
        return (
            f"ProfileTree(order={list(self._ordering)}, "
            f"states={self._num_states}, cells={self.num_internal_cells()})"
        )
