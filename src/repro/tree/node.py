"""Profile-tree nodes (Sec. 3.3, Fig. 3).

Internal nodes hold cells of the form ``[key, pointer]`` where the key
is a value of the level's context parameter (or ``'all'``) and the
pointer leads one level down. Leaf nodes hold the
``attribute = value, score`` payloads of the context state reached by
the root-to-leaf path. Cell lookups optionally charge an
:class:`~repro.tree.counters.AccessCounter` with linear-scan costs,
matching the paper's complexity accounting.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.hierarchy import Value
from repro.preferences.preference import AttributeClause
from repro.tree.counters import AccessCounter

__all__ = ["InternalNode", "LeafNode"]


class LeafNode:
    """A leaf: the set of ``(attribute clause, score)`` payloads of one
    context state.

    The paper draws one payload per leaf; a leaf here holds a mapping so
    several non-conflicting preferences (different clauses) can share a
    state. Under the paper's workloads each leaf has exactly one entry.
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: dict[AttributeClause, float] = {}

    def num_entries(self) -> int:
        """Number of stored payloads."""
        return len(self.entries)

    def __repr__(self) -> str:
        return f"LeafNode({len(self.entries)} entries)"


class InternalNode:
    """An internal node: an ordered collection of ``[key, pointer]`` cells.

    Keys are unique within a node; insertion order is preserved, which
    fixes the deterministic linear-scan access costs.
    """

    __slots__ = ("cells",)

    def __init__(self) -> None:
        self.cells: dict[Value, "InternalNode | LeafNode"] = {}

    def find(
        self, key: Value, counter: AccessCounter | None = None
    ) -> "InternalNode | LeafNode | None":
        """Locate the child under ``key``, charging linear-scan accesses.

        When a counter is supplied it is charged with the number of
        cells a linear scan would examine: the key's position + 1 on a
        hit, or the full cell count on a miss.
        """
        child = self.cells.get(key)
        if counter is not None:
            if child is None:
                counter.add(len(self.cells))
            else:
                position = next(
                    index for index, cell_key in enumerate(self.cells) if cell_key == key
                )
                counter.add(position + 1)
        return child

    def scan(
        self, counter: AccessCounter | None = None
    ) -> Iterator[tuple[Value, "InternalNode | LeafNode"]]:
        """Iterate over every cell, charging one access per cell."""
        for key, child in self.cells.items():
            if counter is not None:
                counter.add(1)
            yield key, child

    def child(self, key: Value) -> "InternalNode | LeafNode | None":
        """Uncounted child lookup (used by insertion and stats)."""
        return self.cells.get(key)

    def add_cell(self, key: Value, child: "InternalNode | LeafNode") -> None:
        """Append a ``[key, pointer]`` cell."""
        self.cells[key] = child

    def num_cells(self) -> int:
        """Number of cells in this node."""
        return len(self.cells)

    def __repr__(self) -> str:
        return f"InternalNode(keys={list(self.cells)})"
