"""Concurrency primitives for the multi-user serving path.

The paper's prototype served one user at a time; the serving system
around it must answer interleaved reads while profiles are edited.
This package provides the two building blocks the service layers share:

* :mod:`repro.concurrency.locks` - a writer-preferring reader-writer
  lock (:class:`RWLock`) and a striped per-key lock table
  (:class:`StripedLockTable`) so per-user locking costs O(stripes)
  memory no matter how many users register;
* :mod:`repro.concurrency.executor` - a bounded thread-pool executor
  (:class:`ConcurrentQueryExecutor`) with admission control and
  per-request timeouts, driving :meth:`PersonalizationService.query_many`.

The process-wide **lock order** (outermost first) is::

    per-user lock  >  service registry lock  >  relation lock
                   >  context-query-tree lock  >  metric-series locks

Every acquisition follows this order, so the layers cannot deadlock:
no code path acquires a lock to the left while holding one to the
right.
"""

from repro.concurrency.executor import (
    ConcurrentQueryExecutor,
    ExecutorSaturated,
    RequestOutcome,
)
from repro.concurrency.locks import RWLock, StripedLockTable

__all__ = [
    "ConcurrentQueryExecutor",
    "ExecutorSaturated",
    "RWLock",
    "RequestOutcome",
    "StripedLockTable",
]
