"""Concurrency primitives for the multi-user serving path.

The paper's prototype served one user at a time; the serving system
around it must answer interleaved reads while profiles are edited.
This package provides the two building blocks the service layers share:

* :mod:`repro.concurrency.locks` - a writer-preferring reader-writer
  lock (:class:`RWLock`) and a striped per-key lock table
  (:class:`StripedLockTable`) so per-user locking costs O(stripes)
  memory no matter how many users register;
* :mod:`repro.concurrency.executor` - a bounded thread-pool executor
  (:class:`ConcurrentQueryExecutor`) with admission control and
  per-request timeouts, driving :meth:`PersonalizationService.query_many`.

The process-wide **lock order** (outermost first) is::

    per-user lock (10)  >  service registry lock (20)
                        >  account stats lock (25)  >  relation lock (30)
                        >  context-query-tree lock (40)  >  metric-series locks (50)

Every acquisition follows this order, so the layers cannot deadlock:
no code path acquires a lock to the left while holding one to the
right. The order is enforced twice: statically by ``python -m repro
analyze`` (:mod:`repro.analysis`) and at runtime by the opt-in
lock-order sanitizer in :mod:`repro.concurrency.locks` (see
:func:`enable_lock_sanitizer`), which the concurrency stress tests run
under.

:mod:`repro.concurrency.blocking` extends the same discipline to
*blocking effects*: a test-scoped patch of socket/fsync/sleep entry
points raising :class:`BlockingUnderLock` when entered with a
non-sanctioned ranked lock held - the runtime twin of the static
``BLOCK001`` rule.
"""

from repro.concurrency.blocking import (
    SANCTIONED_BLOCKING_LEVELS,
    BlockingUnderLock,
    allow_blocking,
    blocking_sanitizer,
    blocking_sanitizer_enabled,
    disable_blocking_sanitizer,
    enable_blocking_sanitizer,
)
from repro.concurrency.executor import (
    ConcurrentQueryExecutor,
    ExecutorSaturated,
    RequestOutcome,
)
from repro.concurrency.locks import (
    LEVEL_ACCOUNT,
    LEVEL_CACHE,
    LEVEL_METRICS,
    LEVEL_REGISTRY,
    LEVEL_RELATION,
    LEVEL_USER,
    LOCK_LEVEL_NAMES,
    LockOrderViolation,
    Mutex,
    RWLock,
    StripedLockTable,
    disable_lock_sanitizer,
    enable_lock_sanitizer,
    held_locks,
    lock_sanitizer,
    lock_sanitizer_enabled,
)

__all__ = [
    "LEVEL_ACCOUNT",
    "LEVEL_CACHE",
    "LEVEL_METRICS",
    "LEVEL_REGISTRY",
    "LEVEL_RELATION",
    "LEVEL_USER",
    "LOCK_LEVEL_NAMES",
    "SANCTIONED_BLOCKING_LEVELS",
    "BlockingUnderLock",
    "ConcurrentQueryExecutor",
    "ExecutorSaturated",
    "LockOrderViolation",
    "Mutex",
    "RWLock",
    "RequestOutcome",
    "StripedLockTable",
    "allow_blocking",
    "blocking_sanitizer",
    "blocking_sanitizer_enabled",
    "disable_blocking_sanitizer",
    "disable_lock_sanitizer",
    "enable_blocking_sanitizer",
    "enable_lock_sanitizer",
    "held_locks",
    "lock_sanitizer",
    "lock_sanitizer_enabled",
]
