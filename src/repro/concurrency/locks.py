"""Reader-writer locks and a striped per-key lock table.

The serving stack's shared state (the relation, each user's profile
tree and result cache) is read by many query threads and written by
comparatively rare profile edits and row inserts. A plain mutex would
serialise the read-heavy hot path; :class:`RWLock` lets any number of
readers proceed together while giving writers exclusive access.

The lock is **writer-preferring**: once a writer is waiting, new
readers queue behind it, so a steady stream of queries cannot starve a
profile edit indefinitely. It is **reentrant on both sides for the
same thread** - a thread already holding the read side re-acquires it
without queueing behind waiting writers (no self-deadlock when a
read-locked method calls another read-locked method), and a thread
holding the write side may re-acquire either side - which lets
compound operations call the same public locked methods internal code
uses.

:class:`StripedLockTable` maps an unbounded key space (user ids) onto a
fixed array of :class:`RWLock` stripes by hash. Two users rarely share
a stripe (and sharing is only a performance, never a correctness,
concern), while memory stays O(stripes) no matter how many users
register.

**Lock hierarchy.** Every lock in the serving stack carries a *level*
from the documented process-wide order (outermost first)::

    router (5)  >  conn (7)  >  user (10)  >  registry (20)
                >  account (25)  >  relation (30)  >  cache (40)
                >  store (45)  >  metrics (50)

The ``router`` and ``conn`` levels belong to the sharded front-end
(:mod:`repro.sharding`): the router's dispatch lock is acquired before
any per-worker connection (socket) lock, and the front-end process
never holds the service-stack locks below them - those live in the
worker processes on the other side of the wire.

The ``store`` level belongs to the persistence layer
(:mod:`repro.storage`): WAL appends run while the editing thread holds
the user's write lock, and snapshot writes run under the service's
registry lock, so the store's internal mutex must sit *below* both
(and above nothing but the metrics locks it may record into).

Acquisitions must happen in strictly increasing level order within one
thread. The order is machine-checked twice: statically by
``python -m repro analyze`` (:mod:`repro.analysis`) and dynamically by
the **lock-order sanitizer** in this module - an opt-in per-thread
held-lock stack that asserts the hierarchy on every acquire and raises
:class:`LockOrderViolation` on the first out-of-order acquisition or
read->write upgrade. The sanitizer is off by default (one global
boolean check per acquire); the concurrency stress tests enable it via
:func:`enable_lock_sanitizer`/:func:`lock_sanitizer`, as does setting
the ``REPRO_LOCK_SANITIZER`` environment variable.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Iterator
from contextlib import contextmanager

from repro.exceptions import ReproError

__all__ = [
    "LEVEL_ACCOUNT",
    "LEVEL_CACHE",
    "LEVEL_CONN",
    "LEVEL_METRICS",
    "LEVEL_REGISTRY",
    "LEVEL_RELATION",
    "LEVEL_ROUTER",
    "LEVEL_STORE",
    "LEVEL_USER",
    "LOCK_LEVEL_NAMES",
    "LockOrderViolation",
    "Mutex",
    "RWLock",
    "StripedLockTable",
    "disable_lock_sanitizer",
    "enable_lock_sanitizer",
    "held_locks",
    "lock_sanitizer",
    "lock_sanitizer_enabled",
]

#: The documented lock hierarchy, outermost (acquired first) to
#: innermost. Gaps leave room for future levels without renumbering.
#: ``router``/``conn`` belong to the sharded front-end
#: (:mod:`repro.sharding`): the router's dispatch lock is taken before
#: any per-connection socket lock, and the front-end process never
#: holds service-stack locks (those live in the worker processes).
LEVEL_ROUTER = 5
LEVEL_CONN = 7
LEVEL_USER = 10
LEVEL_REGISTRY = 20
LEVEL_ACCOUNT = 25
LEVEL_RELATION = 30
LEVEL_CACHE = 40
LEVEL_STORE = 45
LEVEL_METRICS = 50

#: Level value -> human-readable name (used in violation messages and
#: by the static analyzer's report).
LOCK_LEVEL_NAMES = {
    LEVEL_ROUTER: "router",
    LEVEL_CONN: "conn",
    LEVEL_USER: "user",
    LEVEL_REGISTRY: "registry",
    LEVEL_ACCOUNT: "account",
    LEVEL_RELATION: "relation",
    LEVEL_CACHE: "cache",
    LEVEL_STORE: "store",
    LEVEL_METRICS: "metrics",
}


class LockOrderViolation(ReproError):
    """The runtime sanitizer caught an out-of-order lock acquisition."""


def _env_truthy(value: str | None) -> bool:
    return (value or "").strip().lower() not in ("", "0", "false", "no", "off")


_SANITIZER_ENABLED = _env_truthy(os.environ.get("REPRO_LOCK_SANITIZER"))


class _HeldStack(threading.local):
    """Per-thread stack of ``(lock, level, mode)`` acquisitions."""

    def __init__(self) -> None:
        self.entries: list[tuple[object, int | None, str]] = []


_HELD = _HeldStack()


def enable_lock_sanitizer() -> None:
    """Turn on runtime lock-order checking (process-wide)."""
    global _SANITIZER_ENABLED
    _SANITIZER_ENABLED = True


def disable_lock_sanitizer() -> None:
    """Turn runtime lock-order checking back off."""
    global _SANITIZER_ENABLED
    _SANITIZER_ENABLED = False


def lock_sanitizer_enabled() -> bool:
    """Whether the runtime sanitizer is currently active."""
    return _SANITIZER_ENABLED


@contextmanager
def lock_sanitizer() -> Iterator[None]:
    """``with lock_sanitizer():`` - sanitizer on for the block."""
    previous = _SANITIZER_ENABLED
    enable_lock_sanitizer()
    try:
        yield
    finally:
        if not previous:
            disable_lock_sanitizer()


def held_locks() -> list[tuple[object, int | None, str]]:
    """The calling thread's held-lock stack (sanitizer bookkeeping).

    Entries are ``(lock, level, mode)`` in acquisition order; only
    maintained while the sanitizer is enabled.
    """
    return list(_HELD.entries)


def _describe(lock: object, level: int | None) -> str:
    name = getattr(lock, "name", None) or type(lock).__name__
    if level is None:
        return f"{name} (unranked)"
    label = LOCK_LEVEL_NAMES.get(level, str(level))
    return f"{name} (level {level}/{label})"


def _sanitize_check(lock: object, level: int | None, mode: str) -> None:
    """Assert the hierarchy allows acquiring ``lock`` right now.

    Reentrant acquisitions of a lock already on the stack are always
    allowed *except* a read->write upgrade, which deadlocks an RWLock.
    Unranked locks (``level is None``) are tracked but exempt from
    ordering, so driver-local locks do not need a hierarchy slot.
    """
    innermost: tuple[object, int, str] | None = None
    for held, held_level, held_mode in _HELD.entries:
        if held is lock:
            if held_mode == "read" and mode == "write":
                raise LockOrderViolation(
                    f"read->write upgrade on {_describe(lock, level)}: the "
                    "calling thread already holds the read side"
                )
            # Reentrant re-acquisition: no ordering check needed.
            return
        if held_level is not None and (
            innermost is None or held_level >= innermost[1]
        ):
            innermost = (held, held_level, held_mode)
    if level is not None and innermost is not None and level <= innermost[1]:
        raise LockOrderViolation(
            f"acquiring {_describe(lock, level)} while holding "
            f"{_describe(innermost[0], innermost[1])} violates the lock "
            "hierarchy (user > registry > account > relation > cache > "
            "store > metrics)"
        )


def _sanitize_push(lock: object, level: int | None, mode: str) -> None:
    """Record a successful acquisition on the per-thread stack."""
    _HELD.entries.append((lock, level, mode))


def _sanitize_release(lock: object) -> None:
    """Pop the innermost stack entry for ``lock`` (if tracked)."""
    entries = _HELD.entries
    for position in range(len(entries) - 1, -1, -1):
        if entries[position][0] is lock:
            del entries[position]
            return


class RWLock:
    """A writer-preferring, writer-reentrant reader-writer lock.

    Any number of threads may hold the read side at once; the write
    side is exclusive against both readers and other writers. Waiting
    writers block *new* readers (writer preference), so writes cannot
    starve under a read-heavy load.

    Args:
        level: Optional slot in the process lock hierarchy (one of the
            ``LEVEL_*`` constants). Checked by the runtime sanitizer
            when it is enabled; ``None`` exempts the lock.
        name: Optional label used in sanitizer violation messages.

    Example:
        >>> lock = RWLock(level=LEVEL_RELATION, name="relation")
        >>> with lock.read_locked():
        ...     pass  # shared access
        >>> with lock.write_locked():
        ...     pass  # exclusive access
    """

    __slots__ = (
        "_cond",
        "_readers",
        "_writer",
        "_write_depth",
        "_waiting_writers",
        "level",
        "name",
    )

    def __init__(self, level: int | None = None, name: str | None = None) -> None:
        self._cond = threading.Condition()
        # thread id -> nesting depth of currently held read acquisitions
        self._readers: dict[int, int] = {}
        self._writer: int | None = None  # owning thread id
        self._write_depth = 0
        self._waiting_writers = 0
        self.level = level
        self.name = name

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def acquire_read(self, timeout: float | None = None) -> bool:
        """Take the shared side; returns False on timeout.

        Reentrant: a thread already holding the read side re-acquires
        immediately (never queueing behind a waiting writer, which
        would self-deadlock). A thread holding the write lock passes
        straight through, counted as one more write depth, so write
        sections may call read-locked helpers.
        """
        if _SANITIZER_ENABLED:
            _sanitize_check(self, self.level, "read")
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
                if _SANITIZER_ENABLED:
                    _sanitize_push(self, self.level, "read")
                return True
            if me in self._readers:
                self._readers[me] += 1
                if _SANITIZER_ENABLED:
                    _sanitize_push(self, self.level, "read")
                return True
            # Writer preference: park behind any waiting writer.
            ok = self._cond.wait_for(
                lambda: self._writer is None and self._waiting_writers == 0,
                timeout,
            )
            if not ok:
                return False
            self._readers[me] = 1
            if _SANITIZER_ENABLED:
                _sanitize_push(self, self.level, "read")
            return True

    def release_read(self) -> None:
        """Release the shared side (or one write depth for the owner)."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._release_write_locked()
            else:
                depth = self._readers.get(me, 0)
                if depth <= 0:
                    raise ReproError("release_read without a matching acquire_read")
                if depth == 1:
                    del self._readers[me]
                    if not self._readers:
                        self._cond.notify_all()
                else:
                    self._readers[me] = depth - 1
        if _SANITIZER_ENABLED:
            _sanitize_release(self)

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def acquire_write(self, timeout: float | None = None) -> bool:
        """Take the exclusive side; returns False on timeout.

        Reentrant: the owning writer may acquire again (each acquire
        needs a matching release).
        """
        if _SANITIZER_ENABLED:
            _sanitize_check(self, self.level, "write")
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
                if _SANITIZER_ENABLED:
                    _sanitize_push(self, self.level, "write")
                return True
            if me in self._readers:
                raise ReproError(
                    "cannot upgrade a held read lock to the write lock"
                )
            self._waiting_writers += 1
            try:
                ok = self._cond.wait_for(
                    lambda: self._writer is None and not self._readers,
                    timeout,
                )
                if not ok:
                    return False
                self._writer = me
                self._write_depth = 1
                if _SANITIZER_ENABLED:
                    _sanitize_push(self, self.level, "write")
                return True
            finally:
                self._waiting_writers -= 1
                if self._writer is None:
                    # Timed out: unblock readers parked behind us.
                    self._cond.notify_all()

    def release_write(self) -> None:
        """Release one level of the exclusive side."""
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise ReproError("release_write by a thread that does not hold it")
            self._release_write_locked()
        if _SANITIZER_ENABLED:
            _sanitize_release(self)

    def _release_write_locked(self) -> None:
        self._write_depth -= 1
        if self._write_depth == 0:
            self._writer = None
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Context managers & introspection
    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self):
        """``with lock.read_locked():`` - shared section."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        """``with lock.write_locked():`` - exclusive section."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    @property
    def readers(self) -> int:
        """Number of threads currently holding the read side."""
        with self._cond:
            return len(self._readers)

    def write_held(self) -> bool:
        """True iff the *calling* thread holds the write side."""
        with self._cond:
            return self._writer == threading.get_ident()

    def __repr__(self) -> str:
        with self._cond:
            state = (
                f"writer depth={self._write_depth}"
                if self._writer is not None
                else f"readers={len(self._readers)}"
            )
            return f"RWLock({state}, waiting_writers={self._waiting_writers})"


class Mutex:
    """A reentrant mutex that participates in the lock hierarchy.

    The project bans bare ``threading.Lock``/``RLock`` outside this
    package (enforced by ``python -m repro analyze``): every mutual
    exclusion in ``src/`` goes through :class:`Mutex` (or
    :class:`RWLock`) so the runtime sanitizer can see it. Semantics are
    those of ``threading.RLock`` - reentrant, context-managed.

    Args:
        level: Optional slot in the process lock hierarchy (one of the
            ``LEVEL_*`` constants); ``None`` exempts the lock from
            ordering checks (driver-local locks).
        name: Optional label used in sanitizer violation messages.

    Example:
        >>> lock = Mutex(level=LEVEL_REGISTRY, name="service.registry")
        >>> with lock:
        ...     pass  # exclusive section
    """

    __slots__ = ("_lock", "level", "name")

    def __init__(self, level: int | None = None, name: str | None = None) -> None:
        self._lock = threading.RLock()
        self.level = level
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Take the mutex; mirrors ``threading.RLock.acquire``."""
        if _SANITIZER_ENABLED:
            _sanitize_check(self, self.level, "write")
        ok = self._lock.acquire(blocking, timeout)
        if ok and _SANITIZER_ENABLED:
            _sanitize_push(self, self.level, "write")
        return ok

    def release(self) -> None:
        """Release the mutex; mirrors ``threading.RLock.release``."""
        self._lock.release()
        if _SANITIZER_ENABLED:
            _sanitize_release(self)

    def __enter__(self) -> "Mutex":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        label = self.name or "anonymous"
        return f"Mutex({label!r}, level={self.level})"


class StripedLockTable:
    """A fixed array of :class:`RWLock` stripes addressed by key hash.

    Per-user locking must not grow a lock per registered user (the
    north star is millions of users); hashing user ids onto a fixed
    stripe count bounds memory while keeping collisions - two users
    mapping to the same stripe - rare enough that contention stays
    negligible. Collisions only ever *serialise* work that could have
    run in parallel; they can never admit a race.

    Args:
        stripes: Number of locks; rounded up to a power of two so the
            hash maps by mask rather than modulo.
        level: Hierarchy level shared by every stripe (the service's
            per-user table sits at ``LEVEL_USER``); ``None`` exempts
            the stripes from sanitizer ordering checks.
        name: Label prefix for sanitizer violation messages.

    Example:
        >>> table = StripedLockTable(64, level=LEVEL_USER)
        >>> with table.write_locked("alice"):
        ...     pass  # exclusive for every key on alice's stripe
    """

    __slots__ = ("_locks", "_mask")

    def __init__(
        self,
        stripes: int = 64,
        level: int | None = None,
        name: str | None = None,
    ) -> None:
        if stripes <= 0:
            raise ReproError(f"stripe count must be positive, got {stripes}")
        size = 1
        while size < stripes:
            size <<= 1
        prefix = name or "stripe"
        self._locks = tuple(
            RWLock(level=level, name=f"{prefix}[{index}]") for index in range(size)
        )
        self._mask = size - 1

    def __len__(self) -> int:
        return len(self._locks)

    def lock_for(self, key: object) -> RWLock:
        """The stripe ``key`` hashes to (stable for the table's life)."""
        return self._locks[hash(key) & self._mask]

    def read_locked(self, key: object):
        """``with table.read_locked(key):`` - shared section for ``key``."""
        return self.lock_for(key).read_locked()

    def write_locked(self, key: object):
        """``with table.write_locked(key):`` - exclusive section for ``key``."""
        return self.lock_for(key).write_locked()

    def __repr__(self) -> str:
        return f"StripedLockTable({len(self._locks)} stripes)"
