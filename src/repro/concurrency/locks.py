"""Reader-writer locks and a striped per-key lock table.

The serving stack's shared state (the relation, each user's profile
tree and result cache) is read by many query threads and written by
comparatively rare profile edits and row inserts. A plain mutex would
serialise the read-heavy hot path; :class:`RWLock` lets any number of
readers proceed together while giving writers exclusive access.

The lock is **writer-preferring**: once a writer is waiting, new
readers queue behind it, so a steady stream of queries cannot starve a
profile edit indefinitely. It is **reentrant on both sides for the
same thread** - a thread already holding the read side re-acquires it
without queueing behind waiting writers (no self-deadlock when a
read-locked method calls another read-locked method), and a thread
holding the write side may re-acquire either side - which lets
compound operations call the same public locked methods internal code
uses.

:class:`StripedLockTable` maps an unbounded key space (user ids) onto a
fixed array of :class:`RWLock` stripes by hash. Two users rarely share
a stripe (and sharing is only a performance, never a correctness,
concern), while memory stays O(stripes) no matter how many users
register.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.exceptions import ReproError

__all__ = ["RWLock", "StripedLockTable"]


class RWLock:
    """A writer-preferring, writer-reentrant reader-writer lock.

    Any number of threads may hold the read side at once; the write
    side is exclusive against both readers and other writers. Waiting
    writers block *new* readers (writer preference), so writes cannot
    starve under a read-heavy load.

    Example:
        >>> lock = RWLock()
        >>> with lock.read_locked():
        ...     pass  # shared access
        >>> with lock.write_locked():
        ...     pass  # exclusive access
    """

    __slots__ = ("_cond", "_readers", "_writer", "_write_depth", "_waiting_writers")

    def __init__(self) -> None:
        self._cond = threading.Condition()
        # thread id -> nesting depth of currently held read acquisitions
        self._readers: dict[int, int] = {}
        self._writer: int | None = None  # owning thread id
        self._write_depth = 0
        self._waiting_writers = 0

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def acquire_read(self, timeout: float | None = None) -> bool:
        """Take the shared side; returns False on timeout.

        Reentrant: a thread already holding the read side re-acquires
        immediately (never queueing behind a waiting writer, which
        would self-deadlock). A thread holding the write lock passes
        straight through, counted as one more write depth, so write
        sections may call read-locked helpers.
        """
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
                return True
            if me in self._readers:
                self._readers[me] += 1
                return True
            # Writer preference: park behind any waiting writer.
            ok = self._cond.wait_for(
                lambda: self._writer is None and self._waiting_writers == 0,
                timeout,
            )
            if not ok:
                return False
            self._readers[me] = 1
            return True

    def release_read(self) -> None:
        """Release the shared side (or one write depth for the owner)."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._release_write_locked()
                return
            depth = self._readers.get(me, 0)
            if depth <= 0:
                raise ReproError("release_read without a matching acquire_read")
            if depth == 1:
                del self._readers[me]
                if not self._readers:
                    self._cond.notify_all()
            else:
                self._readers[me] = depth - 1

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def acquire_write(self, timeout: float | None = None) -> bool:
        """Take the exclusive side; returns False on timeout.

        Reentrant: the owning writer may acquire again (each acquire
        needs a matching release).
        """
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
                return True
            if me in self._readers:
                raise ReproError(
                    "cannot upgrade a held read lock to the write lock"
                )
            self._waiting_writers += 1
            try:
                ok = self._cond.wait_for(
                    lambda: self._writer is None and not self._readers,
                    timeout,
                )
                if not ok:
                    return False
                self._writer = me
                self._write_depth = 1
                return True
            finally:
                self._waiting_writers -= 1
                if self._writer is None:
                    # Timed out: unblock readers parked behind us.
                    self._cond.notify_all()

    def release_write(self) -> None:
        """Release one level of the exclusive side."""
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise ReproError("release_write by a thread that does not hold it")
            self._release_write_locked()

    def _release_write_locked(self) -> None:
        self._write_depth -= 1
        if self._write_depth == 0:
            self._writer = None
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Context managers & introspection
    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self):
        """``with lock.read_locked():`` - shared section."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        """``with lock.write_locked():`` - exclusive section."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    @property
    def readers(self) -> int:
        """Number of threads currently holding the read side."""
        with self._cond:
            return len(self._readers)

    def write_held(self) -> bool:
        """True iff the *calling* thread holds the write side."""
        with self._cond:
            return self._writer == threading.get_ident()

    def __repr__(self) -> str:
        with self._cond:
            state = (
                f"writer depth={self._write_depth}"
                if self._writer is not None
                else f"readers={len(self._readers)}"
            )
            return f"RWLock({state}, waiting_writers={self._waiting_writers})"


class StripedLockTable:
    """A fixed array of :class:`RWLock` stripes addressed by key hash.

    Per-user locking must not grow a lock per registered user (the
    north star is millions of users); hashing user ids onto a fixed
    stripe count bounds memory while keeping collisions - two users
    mapping to the same stripe - rare enough that contention stays
    negligible. Collisions only ever *serialise* work that could have
    run in parallel; they can never admit a race.

    Args:
        stripes: Number of locks; rounded up to a power of two so the
            hash maps by mask rather than modulo.

    Example:
        >>> table = StripedLockTable(64)
        >>> with table.write_locked("alice"):
        ...     pass  # exclusive for every key on alice's stripe
    """

    __slots__ = ("_locks", "_mask")

    def __init__(self, stripes: int = 64) -> None:
        if stripes <= 0:
            raise ReproError(f"stripe count must be positive, got {stripes}")
        size = 1
        while size < stripes:
            size <<= 1
        self._locks = tuple(RWLock() for _ in range(size))
        self._mask = size - 1

    def __len__(self) -> int:
        return len(self._locks)

    def lock_for(self, key: object) -> RWLock:
        """The stripe ``key`` hashes to (stable for the table's life)."""
        return self._locks[hash(key) & self._mask]

    def read_locked(self, key: object):
        """``with table.read_locked(key):`` - shared section for ``key``."""
        return self.lock_for(key).read_locked()

    def write_locked(self, key: object):
        """``with table.write_locked(key):`` - exclusive section for ``key``."""
        return self.lock_for(key).write_locked()

    def __repr__(self) -> str:
        return f"StripedLockTable({len(self._locks)} stripes)"
