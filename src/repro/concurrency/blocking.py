"""Runtime blocking sanitizer: the dynamic twin of rule BLOCK001.

The static analyzer (:mod:`repro.analysis.effects`) proves at review
time that no *may-block* call - socket I/O, ``os.fsync``,
``time.sleep`` - is reachable while a ranked lock is held outside the
sanctioned boundaries. This module enforces the same contract while
tests actually run: a test-scoped patch of the blocking entry points
that consults the lock sanitizer's per-thread held stack and raises
:class:`BlockingUnderLock` the moment a patched primitive is entered
with a non-sanctioned ranked lock held.

**Sanctioned blocking boundaries.** Three hierarchy levels exist to
guard I/O and are allowed to block while held:

* ``router (5)`` / ``conn (7)`` - the sharded front-end's dispatch and
  per-worker socket locks serialize framed request/response I/O;
* ``store (45)`` - the persistence layer's internal mutex guards the
  WAL handle across ``write``/``flush``/``fsync``.

Any other ranked level (``user``, ``registry``, ``relation``,
``cache``, ``metrics``...) is a pure in-memory critical section;
blocking inside one stalls every thread queued on it, so the sanitizer
treats it as a bug. The *innermost* ranked lock decides: holding the
user lock and then the store lock while fsyncing is the sanctioned WAL
append path, not a violation.

Deliberate exceptions (the fault registry's injected latency runs
under whatever locks the instrumented call site holds - that is the
point of the fault) wrap themselves in :func:`allow_blocking`.

Like the lock sanitizer, this is opt-in and test-scoped: enable it
with :func:`blocking_sanitizer` (which also enables the lock sanitizer
so the held stack is maintained) or the ``REPRO_BLOCKING_SANITIZER``
environment variable. The patch is process-wide while active and
restores the original entry points on exit.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import Any

import repro.concurrency.locks as _locks
from repro.concurrency.locks import (
    LEVEL_CONN,
    LEVEL_ROUTER,
    LEVEL_STORE,
    LOCK_LEVEL_NAMES,
)
from repro.exceptions import ReproError

__all__ = [
    "BlockingUnderLock",
    "SANCTIONED_BLOCKING_LEVELS",
    "allow_blocking",
    "blocking_sanitizer",
    "blocking_sanitizer_enabled",
    "disable_blocking_sanitizer",
    "enable_blocking_sanitizer",
]

#: Hierarchy levels whose critical sections are *expected* to block:
#: the sharded front-end's socket locks and the storage WAL mutex.
#: The static checker (BLOCK001) and the runtime sanitizer share this
#: one definition.
SANCTIONED_BLOCKING_LEVELS: frozenset[int] = frozenset(
    {LEVEL_ROUTER, LEVEL_CONN, LEVEL_STORE}
)


class BlockingUnderLock(ReproError):
    """A blocking primitive was entered holding a non-sanctioned ranked lock."""


def _env_truthy(value: str | None) -> bool:
    return (value or "").strip().lower() in {"1", "true", "yes", "on"}


_ENABLED = _env_truthy(os.environ.get("REPRO_BLOCKING_SANITIZER"))


class _AllowFlag(threading.local):
    """Per-thread escape hatch for deliberate blocking (fault latency)."""

    def __init__(self) -> None:
        self.depth = 0


_ALLOW = _AllowFlag()


def _innermost_ranked() -> int | None:
    """The highest (innermost) ranked level held by this thread."""
    levels = [level for _, level, _ in _locks._HELD.entries if level is not None]
    return max(levels) if levels else None


def _check(primitive: str) -> None:
    if not _ENABLED or _ALLOW.depth:
        return
    level = _innermost_ranked()
    if level is None or level in SANCTIONED_BLOCKING_LEVELS:
        return
    name = LOCK_LEVEL_NAMES.get(level, str(level))
    raise BlockingUnderLock(
        f"{primitive} called while holding ranked lock level {name}({level}); "
        f"only the sanctioned blocking levels "
        f"{sorted(SANCTIONED_BLOCKING_LEVELS)} may block"
    )


# ----------------------------------------------------------------------
# Patching machinery
# ----------------------------------------------------------------------

#: (owner, attribute) pairs patched while the sanitizer is installed.
_PATCH_POINTS: tuple[tuple[Any, str], ...] = (
    (time, "sleep"),
    (os, "fsync"),
    (socket.socket, "send"),
    (socket.socket, "sendall"),
    (socket.socket, "recv"),
    (socket.socket, "accept"),
    (socket.socket, "connect"),
)

#: ``(owner, attr, original, was_in_owner_dict)`` while patched.
_SAVED: list[tuple[Any, str, Any, bool]] = []


def _wrap(primitive: str, original: Callable[..., Any]) -> Callable[..., Any]:
    def guarded(*args: Any, **kwargs: Any) -> Any:
        _check(primitive)
        return original(*args, **kwargs)

    guarded.__name__ = getattr(original, "__name__", primitive)
    guarded._repro_blocking_guard = True  # type: ignore[attr-defined]
    return guarded


def _install() -> None:
    if _SAVED:
        return
    for owner, attr in _PATCH_POINTS:
        original = getattr(owner, attr)
        if getattr(original, "_repro_blocking_guard", False):
            continue  # pragma: no cover - double-install guard
        in_dict = attr in vars(owner)
        label = f"{getattr(owner, '__name__', owner)}.{attr}"
        setattr(owner, attr, _wrap(label, original))
        _SAVED.append((owner, attr, original, in_dict))


def _uninstall() -> None:
    for owner, attr, original, in_dict in _SAVED:
        if in_dict:
            setattr(owner, attr, original)
        else:
            # The guard shadowed an inherited slot (socket methods come
            # from the C base); deleting it re-exposes the original.
            try:
                delattr(owner, attr)
            except AttributeError:  # pragma: no cover - already gone
                pass
    _SAVED.clear()


def enable_blocking_sanitizer() -> None:
    """Patch the blocking entry points and start enforcing."""
    global _ENABLED
    _ENABLED = True
    _install()


def disable_blocking_sanitizer() -> None:
    """Stop enforcing and restore the original entry points."""
    global _ENABLED
    _ENABLED = False
    _uninstall()


def blocking_sanitizer_enabled() -> bool:
    """Whether the blocking sanitizer is currently enforcing."""
    return _ENABLED


@contextmanager
def blocking_sanitizer() -> Iterator[None]:
    """Scope the blocking sanitizer (and the lock sanitizer it needs).

    The held-lock stack is only maintained while the lock sanitizer is
    on, so this context enables both and restores both.
    """
    lock_previous = _locks.lock_sanitizer_enabled()
    previous = _ENABLED
    _locks.enable_lock_sanitizer()
    enable_blocking_sanitizer()
    try:
        yield
    finally:
        if not previous:
            disable_blocking_sanitizer()
        if not lock_previous:
            _locks.disable_lock_sanitizer()


@contextmanager
def allow_blocking() -> Iterator[None]:
    """Permit blocking on this thread inside the context.

    For code whose *job* is to block under the caller's locks - the
    fault registry's injected latency, most notably.
    """
    _ALLOW.depth += 1
    try:
        yield
    finally:
        _ALLOW.depth -= 1


if _ENABLED:  # pragma: no cover - env-var activation path
    _install()
