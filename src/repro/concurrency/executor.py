"""A bounded thread-pool executor for concurrent query serving.

``concurrent.futures.ThreadPoolExecutor`` alone is not a serving
component: its queue is unbounded (a traffic spike buffers requests
forever instead of shedding load) and a submitted callable cannot be
abandoned once it is running. :class:`ConcurrentQueryExecutor` adds the
two missing pieces:

* **admission control** - at most ``max_workers + queue_depth``
  requests may be in flight; beyond that, ``submit`` either blocks
  (bulk mode, used by :meth:`PersonalizationService.query_many`) or
  raises :class:`ExecutorSaturated` (online mode, letting the caller
  return a 503-equivalent instead of buffering unboundedly);
* **per-request timeout** - collection waits at most ``timeout``
  seconds per request; a request still queued is cancelled, a request
  already running is recorded as timed out and its result discarded.

Outcomes are returned as :class:`RequestOutcome` records in submission
order, so a batch's results line up with its requests regardless of
completion order. Submission/completion/rejection/timeout counts are
mirrored into the process metrics registry (``concurrency.*``) and
per-request latency into ``latency.concurrent_query``.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence
from concurrent.futures import CancelledError, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass

from repro.exceptions import ReproError
from repro.concurrency.locks import LEVEL_METRICS, Mutex

__all__ = ["ConcurrentQueryExecutor", "ExecutorSaturated", "RequestOutcome"]


def _get_registry():
    # Deferred: obs sits *below* concurrency in the layer order (its
    # metric locks are built from repro.concurrency.locks), so a
    # module-level import here would be circular.
    from repro.obs.metrics import get_registry

    return get_registry()


def _get_faults():
    # Deferred for the same reason: repro.faults builds on
    # repro.concurrency.locks, so importing it while this package is
    # still initialising would cycle.
    from repro.faults.registry import get_fault_registry

    return get_fault_registry()


class ExecutorSaturated(ReproError):
    """Raised by non-blocking ``submit`` when admission is exhausted."""

    #: Classification tag for the resilience layer (see
    #: ``repro.resilience.ResiliencePolicies.classify``).
    site = "executor.submit"


@dataclass
class RequestOutcome:
    """What happened to one submitted request.

    Attributes:
        index: Position of the request in its batch (submission order).
        status: ``"ok"``, ``"error"``, ``"timeout"``, ``"cancelled"``
            or ``"rejected"`` (shed at admission by non-blocking
            submission).
        result: The callable's return value (``None`` unless ``"ok"``).
        error: The raised exception (``None`` unless ``"error"`` or
            ``"rejected"``).
        seconds: Wall-clock from submission to collection.
    """

    index: int
    status: str
    result: object = None
    error: BaseException | None = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True iff the request completed normally."""
        return self.status == "ok"


class ConcurrentQueryExecutor:
    """Runs request callables on a bounded thread pool.

    Args:
        max_workers: Worker threads (the concurrency level).
        queue_depth: Requests allowed to wait beyond the running ones;
            ``None`` means ``2 * max_workers``. Admission capacity is
            ``max_workers + queue_depth``.
        timeout: Default per-request collection timeout in seconds
            (``None`` = wait forever).

    The executor is a context manager; leaving the block shuts the
    pool down (waiting for running requests).

    Example:
        >>> with ConcurrentQueryExecutor(max_workers=4) as pool:
        ...     outcomes = pool.run([lambda: 1, lambda: 2])
        >>> [outcome.result for outcome in outcomes]
        [1, 2]
    """

    def __init__(
        self,
        max_workers: int = 4,
        queue_depth: int | None = None,
        timeout: float | None = None,
    ) -> None:
        if max_workers <= 0:
            raise ReproError(f"max_workers must be positive, got {max_workers}")
        if queue_depth is None:
            queue_depth = 2 * max_workers
        if queue_depth < 0:
            raise ReproError(f"queue_depth must be >= 0, got {queue_depth}")
        self._max_workers = max_workers
        self._capacity = max_workers + queue_depth
        self._admission = threading.BoundedSemaphore(self._capacity)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._timeout = timeout
        self._shutdown = False
        self._stats_lock = Mutex(level=LEVEL_METRICS, name="executor.stats")
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.timeouts = 0
        self.errors = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def max_workers(self) -> int:
        """Worker-thread count."""
        return self._max_workers

    @property
    def capacity(self) -> int:
        """Maximum in-flight requests (running + queued)."""
        return self._capacity

    def stats(self) -> dict[str, int]:
        """Lifetime counters: submitted/completed/rejected/timeouts/errors."""
        with self._stats_lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected": self.rejected,
                "timeouts": self.timeouts,
                "errors": self.errors,
            }

    def _count(self, field: str, delta: int = 1) -> None:
        with self._stats_lock:
            setattr(self, field, getattr(self, field) + delta)
        registry = _get_registry()
        if registry.enabled:
            registry.inc(f"concurrency.{field}", delta)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, fn: Callable[[], object], block: bool = True):
        """Submit one zero-argument callable; returns its future.

        With ``block=True`` submission waits for admission capacity;
        with ``block=False`` a saturated executor raises
        :class:`ExecutorSaturated` immediately (shed the request
        instead of queueing it).

        Raises:
            ExecutorSaturated: Non-blocking submit on a full executor.
            ReproError: Submit after shutdown.
        """
        if self._shutdown:
            raise ReproError("executor is shut down")
        faults = _get_faults()
        if faults.enabled:
            faults.fire("executor.submit")
        if not self._admission.acquire(blocking=block):
            self._count("rejected")
            raise ExecutorSaturated(
                f"executor saturated ({self._capacity} requests in flight)"
            )

        def call():
            try:
                if faults.enabled:
                    # Latency faults here stretch a request's time *on
                    # a worker*, which is what per-request timeouts and
                    # deadline checks must be exercised against.
                    faults.fire("executor.request")
                return fn()
            finally:
                self._admission.release()

        try:
            future = self._pool.submit(call)
        except BaseException:
            self._admission.release()
            raise
        self._count("submitted")

        def on_cancel(f):
            # A cancelled future never ran ``call``, so its admission
            # permit must be returned here.
            if f.cancelled():
                self._admission.release()

        future.add_done_callback(on_cancel)
        return future

    def run(
        self,
        requests: Sequence[Callable[[], object]],
        timeout: float | None = None,
        block: bool = True,
    ) -> list[RequestOutcome]:
        """Run a batch of callables; outcomes in submission order.

        ``timeout`` (default: the constructor's) applies per request,
        measured from batch start: a request not done ``timeout``
        seconds after submission is cancelled if still queued and
        recorded as ``"timeout"`` if already running (its eventual
        result is discarded). With ``block=False``, a request that
        finds the executor saturated is shed at admission and recorded
        as ``"rejected"`` (the rest of the batch still runs).
        """
        if timeout is None:
            timeout = self._timeout
        started = time.perf_counter()
        futures = []
        for fn in requests:
            try:
                futures.append(self.submit(fn, block=block))
            except ExecutorSaturated as error:
                futures.append(error)
            except ReproError as error:
                # An injected submit-site fault fails this request, not
                # the whole batch; a shut-down executor still raises.
                if self._shutdown:
                    raise
                futures.append(error)
        outcomes: list[RequestOutcome] = []
        registry = _get_registry()
        for index, future in enumerate(futures):
            if isinstance(future, ExecutorSaturated):
                outcomes.append(
                    RequestOutcome(index=index, status="rejected", error=future)
                )
                continue
            if isinstance(future, BaseException):
                self._count("errors")
                outcomes.append(
                    RequestOutcome(index=index, status="error", error=future)
                )
                continue
            remaining: float | None = None
            if timeout is not None:
                remaining = max(0.0, timeout - (time.perf_counter() - started))
            try:
                result = future.result(timeout=remaining)
            except (TimeoutError, FuturesTimeoutError):
                future.cancel()
                self._count("timeouts")
                outcomes.append(
                    RequestOutcome(index=index, status="timeout")
                )
                continue
            except CancelledError:
                outcomes.append(RequestOutcome(index=index, status="cancelled"))
                continue
            except BaseException as error:  # noqa: B036 - worker errors propagate here
                self._count("errors")
                outcomes.append(
                    RequestOutcome(index=index, status="error", error=error)
                )
                continue
            elapsed = time.perf_counter() - started
            self._count("completed")
            if registry.enabled:
                registry.observe("latency.concurrent_query", elapsed)
            outcomes.append(
                RequestOutcome(
                    index=index, status="ok", result=result, seconds=elapsed
                )
            )
        return outcomes

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for the pool."""
        self._shutdown = True
        self._pool.shutdown(wait=wait, cancel_futures=not wait)

    def __enter__(self) -> "ConcurrentQueryExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    def __repr__(self) -> str:
        return (
            f"ConcurrentQueryExecutor(workers={self._max_workers}, "
            f"capacity={self._capacity}, submitted={self.submitted})"
        )
