"""Attribute hierarchies: levels, lattices and ancestor functions (Sec. 3.1)."""

from repro.hierarchy.builders import (
    accompanying_people_hierarchy,
    balanced_hierarchy,
    flat_hierarchy,
    location_hierarchy,
    synthetic_level_sizes,
    temperature_hierarchy,
)
from repro.hierarchy.hierarchy import Hierarchy, Value
from repro.hierarchy.levels import ALL_LEVEL, ALL_VALUE, Level

__all__ = [
    "ALL_LEVEL",
    "ALL_VALUE",
    "Hierarchy",
    "Level",
    "Value",
    "accompanying_people_hierarchy",
    "balanced_hierarchy",
    "flat_hierarchy",
    "location_hierarchy",
    "synthetic_level_sizes",
    "temperature_hierarchy",
]
