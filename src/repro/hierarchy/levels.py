"""Levels of an attribute hierarchy.

The paper (Sec. 3.1) models each context parameter as a multidimensional
attribute whose domain participates in a lattice of *levels*
``L = (L1, ..., Lm-1, ALL)``: ``L1`` is the *detailed* level, ``ALL``
the single-value top. All hierarchies in the paper (Figs. 1-2) are
chains, which are the lattices this implementation realises; the level
partial order ``L1 < L2 < ... < ALL`` is total within one hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import HierarchyError

__all__ = ["ALL_LEVEL", "ALL_VALUE", "Level"]

#: Canonical name of the mandatory top level of every hierarchy.
ALL_LEVEL = "ALL"

#: The single value populating the top level (``'all'`` in the paper).
ALL_VALUE = "all"


@dataclass(frozen=True, order=True)
class Level:
    """One level of a hierarchy.

    Levels are ordered by ``index``: index 0 is the detailed level
    ``L1`` and the largest index is ``ALL``. Comparisons between levels
    therefore realise the paper's ``<`` partial order on levels.

    Attributes:
        index: Position in the chain, 0 for the detailed level.
        name: Human-readable level name, e.g. ``"City"``.
    """

    index: int
    name: str

    def __post_init__(self) -> None:
        if self.index < 0:
            raise HierarchyError(f"level index must be >= 0, got {self.index}")
        if not self.name:
            raise HierarchyError("level name must be non-empty")

    def __str__(self) -> str:
        return f"{self.name}(L{self.index + 1})"
