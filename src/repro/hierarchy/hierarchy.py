"""Attribute hierarchies with ``anc``/``desc`` families of functions.

A :class:`Hierarchy` realises the paper's lattice of levels (Sec. 3.1):
an ordered chain of named levels whose top is always ``ALL`` with the
single value ``'all'``, plus the family of ancestor functions
``anc_Li^Lj`` relating values of different levels and their inverses
``desc_Lj^Li``. Values are unique across the whole hierarchy, so the
level of a value never needs to be spelled out by callers.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.exceptions import HierarchyError, UnknownLevelError, UnknownValueError
from repro.hierarchy.levels import ALL_LEVEL, ALL_VALUE, Level

__all__ = ["Hierarchy", "Value"]

#: Values stored in hierarchies: plain strings or integers.
Value = str | int


class Hierarchy:
    """A chain of levels over a value domain, with ancestor functions.

    Args:
        name: Hierarchy name, e.g. ``"location"``.
        levels: Level names from the detailed level upward. The top
            ``ALL`` level is appended automatically when absent.
        members: For each level below ``ALL``, the ordered sequence of
            its values. Order matters: it defines the ``<`` used by
            range descriptors and by the monotonicity check.
        parent_of: Maps every value to its parent at the next level up.
            Parents of values on the level directly below ``ALL`` may be
            omitted (they default to ``'all'``).

    Raises:
        HierarchyError: On duplicate values, missing/dangling parents,
            childless intermediate values, or an empty detailed level.

    Example:
        >>> h = Hierarchy(
        ...     "location",
        ...     levels=["Region", "City"],
        ...     members={"Region": ["Plaka", "Kifisia"], "City": ["Athens"]},
        ...     parent_of={"Plaka": "Athens", "Kifisia": "Athens"},
        ... )
        >>> h.anc("Plaka", "City")
        'Athens'
        >>> sorted(h.desc("Athens", "Region"))
        ['Kifisia', 'Plaka']
    """

    def __init__(
        self,
        name: str,
        levels: Sequence[str],
        members: Mapping[str, Sequence[Value]],
        parent_of: Mapping[Value, Value] | None = None,
    ) -> None:
        if not name:
            raise HierarchyError("hierarchy name must be non-empty")
        level_names = [str(level) for level in levels]
        if not level_names:
            raise HierarchyError("a hierarchy needs at least one level below ALL")
        if ALL_LEVEL in level_names:
            if level_names[-1] != ALL_LEVEL:
                raise HierarchyError("the ALL level must be the top level")
            level_names = level_names[:-1]
        if len(set(level_names)) != len(level_names):
            raise HierarchyError(f"duplicate level names in {level_names}")

        self._name = name
        self._levels = tuple(
            Level(index, level_name)
            for index, level_name in enumerate([*level_names, ALL_LEVEL])
        )
        self._level_by_name = {level.name: level for level in self._levels}

        parent_of = dict(parent_of or {})
        self._members: dict[str, tuple[Value, ...]] = {}
        self._level_of: dict[Value, Level] = {}
        self._rank: dict[Value, int] = {}
        for level in self._levels[:-1]:
            values = tuple(members.get(level.name, ()))
            if not values:
                raise HierarchyError(
                    f"level {level.name!r} of hierarchy {name!r} has no values"
                )
            self._members[level.name] = values
            for rank, value in enumerate(values):
                if value in self._level_of or value == ALL_VALUE:
                    raise HierarchyError(
                        f"value {value!r} appears more than once in hierarchy {name!r}"
                    )
                self._level_of[value] = level
                self._rank[value] = rank
        self._members[ALL_LEVEL] = (ALL_VALUE,)
        self._level_of[ALL_VALUE] = self._levels[-1]
        self._rank[ALL_VALUE] = 0

        extra_members = set(members) - {level.name for level in self._levels}
        if extra_members:
            raise HierarchyError(f"members given for unknown levels {extra_members}")

        self._parent: dict[Value, Value] = {ALL_VALUE: ALL_VALUE}
        self._children: dict[Value, list[Value]] = {value: [] for value in self._level_of}
        below_top = self._levels[-2].name if len(self._levels) > 1 else None
        for value, level in self._level_of.items():
            if value == ALL_VALUE:
                continue
            parent = parent_of.pop(value, None)
            if parent is None:
                if level.name != below_top:
                    raise HierarchyError(
                        f"value {value!r} at level {level.name!r} has no parent"
                    )
                parent = ALL_VALUE
            parent_level = self._level_of.get(parent)
            if parent_level is None:
                raise HierarchyError(
                    f"parent {parent!r} of {value!r} is not a hierarchy value"
                )
            if parent_level.index != level.index + 1:
                raise HierarchyError(
                    f"parent {parent!r} of {value!r} must sit exactly one level up"
                )
            self._parent[value] = parent
            self._children[parent].append(value)
        if parent_of:
            raise HierarchyError(
                f"parent_of mentions values outside the hierarchy: {set(parent_of)}"
            )
        for value, level in self._level_of.items():
            if 0 < level.index < len(self._levels) - 1 and not self._children[value]:
                raise HierarchyError(
                    f"intermediate value {value!r} has no children; "
                    "desc() to the detailed level would be empty"
                )

        self._leaves: dict[Value, frozenset[Value]] = {}
        for value in self._members[self._levels[0].name]:
            self._leaves[value] = frozenset([value])
        for level in self._levels[1:]:
            for value in self._members[level.name]:
                descendants: set[Value] = set()
                for child in self._children[value]:
                    descendants |= self._leaves[child]
                self._leaves[value] = frozenset(descendants)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Name of the hierarchy."""
        return self._name

    @property
    def levels(self) -> tuple[Level, ...]:
        """All levels, detailed first, ``ALL`` last."""
        return self._levels

    @property
    def num_levels(self) -> int:
        """Number of levels including ``ALL`` (the paper's ``m``)."""
        return len(self._levels)

    @property
    def detailed_level(self) -> Level:
        """The bottom level ``L1``."""
        return self._levels[0]

    @property
    def top_level(self) -> Level:
        """The ``ALL`` level."""
        return self._levels[-1]

    def level(self, name: str) -> Level:
        """Return the level called ``name``.

        Raises:
            UnknownLevelError: If no such level exists.
        """
        try:
            return self._level_by_name[name]
        except KeyError:
            raise UnknownLevelError(
                f"hierarchy {self._name!r} has no level {name!r}"
            ) from None

    def domain(self, level: str | Level | None = None) -> tuple[Value, ...]:
        """Values of one level (``dom_Lj``), detailed level by default."""
        if level is None:
            level = self._levels[0]
        name = level.name if isinstance(level, Level) else level
        self.level(name)  # validate
        return self._members[name]

    @property
    def dom(self) -> tuple[Value, ...]:
        """The detailed domain ``dom(C)`` = ``dom_L1(C)``."""
        return self._members[self._levels[0].name]

    @property
    def edom(self) -> tuple[Value, ...]:
        """The extended domain: union of every level's domain, incl. ``'all'``."""
        values: list[Value] = []
        for level in self._levels:
            values.extend(self._members[level.name])
        return tuple(values)

    def __contains__(self, value: object) -> bool:
        return value in self._level_of

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hierarchy):
            return NotImplemented
        return (
            self._name == other._name
            and self._levels == other._levels
            and self._members == other._members
            and self._parent == other._parent
        )

    def __hash__(self) -> int:
        return hash((self._name, self._levels))

    def __repr__(self) -> str:
        level_names = " < ".join(level.name for level in self._levels)
        return f"Hierarchy({self._name!r}: {level_names})"

    # ------------------------------------------------------------------
    # Ancestor / descendant functions
    # ------------------------------------------------------------------
    def level_of(self, value: Value) -> Level:
        """The level a value belongs to.

        Raises:
            UnknownValueError: If the value is not in the hierarchy.
        """
        try:
            return self._level_of[value]
        except KeyError:
            raise UnknownValueError(
                f"{value!r} is not a value of hierarchy {self._name!r}"
            ) from None

    def rank(self, value: Value) -> int:
        """Position of ``value`` within its level's declared order."""
        self.level_of(value)
        return self._rank[value]

    def parent(self, value: Value) -> Value:
        """The value's parent one level up (``'all'`` maps to itself)."""
        self.level_of(value)
        return self._parent[value]

    def children(self, value: Value) -> tuple[Value, ...]:
        """The value's children one level down (empty for detailed values)."""
        self.level_of(value)
        return tuple(self._children[value])

    def anc(self, value: Value, to_level: str | Level) -> Value:
        """``anc_Li^Lj(value)``: the value's ancestor at ``to_level``.

        The target level must be at or above the value's level; asking
        for the value's own level returns the value itself.

        Raises:
            HierarchyError: If ``to_level`` lies below the value's level.
        """
        target = to_level if isinstance(to_level, Level) else self.level(to_level)
        if isinstance(to_level, Level) and to_level not in self._levels:
            raise UnknownLevelError(
                f"hierarchy {self._name!r} has no level {to_level!r}"
            )
        current = self.level_of(value)
        if target.index < current.index:
            raise HierarchyError(
                f"anc() target level {target.name!r} is below the level "
                f"{current.name!r} of value {value!r}"
            )
        result = value
        for _ in range(target.index - current.index):
            result = self._parent[result]
        return result

    def ancestors(self, value: Value) -> tuple[Value, ...]:
        """All strict ancestors of ``value``, nearest first, ending at ``'all'``.

        For ``'all'`` itself the result is empty.
        """
        self.level_of(value)
        chain: list[Value] = []
        current = value
        while current != ALL_VALUE:
            current = self._parent[current]
            chain.append(current)
        return tuple(chain)

    def desc(self, value: Value, to_level: str | Level) -> frozenset[Value]:
        """``desc_Lj^Li(value)``: all descendants of ``value`` at ``to_level``.

        The target level must be at or below the value's level; asking
        for the value's own level returns ``{value}``.
        """
        target = to_level if isinstance(to_level, Level) else self.level(to_level)
        current = self.level_of(value)
        if target.index > current.index:
            raise HierarchyError(
                f"desc() target level {target.name!r} is above the level "
                f"{current.name!r} of value {value!r}"
            )
        frontier = [value]
        for _ in range(current.index - target.index):
            frontier = [child for parent in frontier for child in self._children[parent]]
        return frozenset(frontier)

    def leaves(self, value: Value) -> frozenset[Value]:
        """Descendants of ``value`` at the detailed level (memoised)."""
        self.level_of(value)
        return self._leaves[value]

    def is_ancestor(self, upper: Value, lower: Value) -> bool:
        """True iff ``upper`` is a *strict* ancestor of ``lower``."""
        upper_level = self.level_of(upper)
        lower_level = self.level_of(lower)
        if upper_level.index <= lower_level.index:
            return False
        return self.anc(lower, upper_level) == upper

    def covers_value(self, upper: Value, lower: Value) -> bool:
        """True iff ``upper == lower`` or ``upper`` is an ancestor of ``lower``.

        This is the per-parameter ingredient of the ``covers`` relation
        between context states (Def. 10).
        """
        return upper == lower or self.is_ancestor(upper, lower)

    # ------------------------------------------------------------------
    # Ordering and monotonicity
    # ------------------------------------------------------------------
    def values_between(self, low: Value, high: Value) -> tuple[Value, ...]:
        """Expand the range ``[low, high]`` within one level (Def. 1, case 3).

        Both endpoints must belong to the same level; the declared order
        of that level's members is used. An empty tuple results when
        ``low`` comes after ``high``.
        """
        low_level = self.level_of(low)
        high_level = self.level_of(high)
        if low_level != high_level:
            raise HierarchyError(
                f"range endpoints {low!r} and {high!r} are on different levels"
            )
        values = self._members[low_level.name]
        start, stop = self._rank[low], self._rank[high]
        return values[start : stop + 1]

    def is_monotone(self) -> bool:
        """Check condition 3 of Sec. 3.1: every ``anc`` step is monotone.

        With values ordered by their declared rank, ``x < y`` must imply
        ``anc(x) <= anc(y)`` for each adjacent pair of levels.
        """
        for level in self._levels[:-1]:
            ranks = [self._rank[self._parent[value]] for value in self._members[level.name]]
            if any(left > right for left, right in zip(ranks, ranks[1:])):
                return False
        return True
