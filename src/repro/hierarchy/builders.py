"""Builders for commonly needed hierarchies.

Two families are provided: the *reference* hierarchies of the paper's
running example (Figs. 1-2: location, temperature, accompanying
people), and *balanced synthetic* hierarchies used by the performance
experiments of Sec. 5.2, where a detailed domain of a given cardinality
is grouped into progressively smaller levels.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.exceptions import HierarchyError
from repro.hierarchy.hierarchy import Hierarchy, Value

__all__ = [
    "balanced_hierarchy",
    "flat_hierarchy",
    "location_hierarchy",
    "temperature_hierarchy",
    "accompanying_people_hierarchy",
]


def flat_hierarchy(name: str, values: Sequence[Value], level: str = "Detail") -> Hierarchy:
    """A two-level hierarchy: one detailed level directly under ``ALL``."""
    return Hierarchy(name, levels=[level], members={level: list(values)})


def balanced_hierarchy(
    name: str,
    level_sizes: Sequence[int],
    level_names: Sequence[str] | None = None,
    value_prefix: str | None = None,
) -> Hierarchy:
    """Build a balanced hierarchy with the given per-level cardinalities.

    ``level_sizes`` lists the number of values of each level from the
    detailed level upward, excluding ``ALL`` (e.g. ``[100, 10]`` builds
    100 detailed values grouped into 10 parents under ``'all'``). Sizes
    must be strictly decreasing; children are distributed contiguously
    so every parent receives either ``floor`` or ``ceil`` of its fair
    share and the ``anc`` functions are monotone by construction.

    Values are named ``"{prefix}_{level_index}_{rank}"``.

    Example:
        >>> h = balanced_hierarchy("loc", [6, 2])
        >>> h.anc("loc_0_0", "L2")
        'loc_1_0'
        >>> sorted(h.desc("loc_1_1", "L1"))
        ['loc_0_3', 'loc_0_4', 'loc_0_5']
    """
    if not level_sizes:
        raise HierarchyError("level_sizes must be non-empty")
    if any(size <= 0 for size in level_sizes):
        raise HierarchyError(f"level sizes must be positive, got {list(level_sizes)}")
    if any(lower < upper for lower, upper in zip(level_sizes, level_sizes[1:])):
        raise HierarchyError(
            f"level sizes must not increase upward, got {list(level_sizes)}"
        )
    if level_names is None:
        level_names = [f"L{index + 1}" for index in range(len(level_sizes))]
    if len(level_names) != len(level_sizes):
        raise HierarchyError("level_names and level_sizes must have the same length")
    prefix = value_prefix if value_prefix is not None else name

    members = {
        level_name: [f"{prefix}_{depth}_{rank}" for rank in range(size)]
        for depth, (level_name, size) in enumerate(zip(level_names, level_sizes))
    }
    parent_of: dict[Value, Value] = {}
    for depth in range(len(level_sizes) - 1):
        lower = members[level_names[depth]]
        upper = members[level_names[depth + 1]]
        # Contiguous, near-even assignment keeps anc monotone.
        per_parent = len(lower) / len(upper)
        for rank, value in enumerate(lower):
            parent_index = min(int(rank / per_parent), len(upper) - 1)
            parent_of[value] = upper[parent_index]
    return Hierarchy(name, levels=list(level_names), members=members, parent_of=parent_of)


def synthetic_level_sizes(domain_size: int, num_levels: int, fanout: int = 10) -> list[int]:
    """Per-level sizes for a synthetic hierarchy of ``num_levels`` levels.

    ``num_levels`` counts *all* levels including ``ALL`` (as the paper
    does when it says the 50-value parameter has 2 hierarchy levels).
    Each level above the detailed one shrinks by ``fanout``.
    """
    if num_levels < 2:
        raise HierarchyError("num_levels includes ALL and must be >= 2")
    sizes = [domain_size]
    for _ in range(num_levels - 2):
        sizes.append(max(1, math.ceil(sizes[-1] / fanout)))
    return sizes


def location_hierarchy() -> Hierarchy:
    """The paper's location hierarchy (Fig. 1): Region < City < Country < ALL.

    A second country (Cyprus) is included so that ``Greece`` and the
    top value ``all`` have different detailed-level descendant sets -
    without it the Jaccard distance could not tell them apart.
    """
    return Hierarchy(
        "location",
        levels=["Region", "City", "Country"],
        members={
            "Region": [
                "Plaka",
                "Kifisia",
                "Syntagma",
                "Perama",
                "Ladadika",
                "Kastra",
                "Ledra",
            ],
            "City": ["Athens", "Ioannina", "Thessaloniki", "Nicosia"],
            "Country": ["Greece", "Cyprus"],
        },
        parent_of={
            "Plaka": "Athens",
            "Kifisia": "Athens",
            "Syntagma": "Athens",
            "Perama": "Ioannina",
            "Ladadika": "Thessaloniki",
            "Kastra": "Thessaloniki",
            "Ledra": "Nicosia",
            "Athens": "Greece",
            "Ioannina": "Greece",
            "Thessaloniki": "Greece",
            "Nicosia": "Cyprus",
        },
    )


def temperature_hierarchy() -> Hierarchy:
    """The paper's temperature hierarchy (Fig. 2).

    ``Conditions`` (freezing..hot) < ``Weather Characterization``
    (bad/good) < ``ALL``; the declared value order makes range
    descriptors such as ``temperature in [mild, hot]`` meaningful.
    """
    return Hierarchy(
        "temperature",
        levels=["Conditions", "Weather Characterization"],
        members={
            "Conditions": ["freezing", "cold", "mild", "warm", "hot"],
            "Weather Characterization": ["bad", "good"],
        },
        parent_of={
            "freezing": "bad",
            "cold": "bad",
            "mild": "good",
            "warm": "good",
            "hot": "good",
        },
    )


def accompanying_people_hierarchy() -> Hierarchy:
    """The paper's accompanying-people hierarchy (Fig. 2): Relationship < ALL."""
    return Hierarchy(
        "accompanying_people",
        levels=["Relationship"],
        members={"Relationship": ["friends", "family", "alone"]},
    )
