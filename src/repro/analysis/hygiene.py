"""Hot-path hygiene: the rules that keep serving code serving.

* ``HYG001`` - bare ``threading.Lock``/``threading.RLock`` construction
  outside :mod:`repro.concurrency`. Raw locks are invisible to the
  runtime lock-order sanitizer and carry no hierarchy level; use
  :class:`repro.concurrency.Mutex` (or :class:`~repro.concurrency.RWLock`)
  instead.
* ``HYG002`` - ``print`` in library code. The CLI surface
  (``repro.cli``, ``repro.__main__``) is the only place stdout belongs;
  everything else reports through return values or :mod:`repro.obs`.
* ``HYG003`` - mutable default arguments (a shared list/dict/set
  default aliases state across calls; the classic Python trap).
* ``HYG004`` - un-gated metrics work inside the ranking hot path.
  Inside ``search_cs``/``rank_rows``/``rank_cs_batch``, every
  ``.inc(...)``/``.observe(...)``/``.set_gauge(...)`` call must sit
  under an ``if <registry>.enabled:`` guard so the disabled cost stays
  one branch (the PR 2 overhead bound depends on it).
* ``HYG005`` - ``except Exception`` (or a bare ``except``) outside the
  sanctioned failure boundaries. Swallowing arbitrary exceptions
  mid-stack hides injected faults, sanitizer violations and real bugs
  alike; broad catches belong only where containing arbitrary component
  failure *is the job* - the resilience layer's degradation ladder and
  the thread-boundary harnesses listed in
  :data:`BROAD_EXCEPT_BOUNDARIES`. A broad catch that re-raises
  unconditionally (``raise`` as the handler's last statement) is exempt
  anywhere: it observes failures, it does not swallow them.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.modules import SourceModule

__all__ = [
    "BROAD_EXCEPT_BOUNDARIES",
    "HOT_FUNCTIONS",
    "PRINT_ALLOWED_MODULES",
    "check_hygiene",
]

#: Modules allowed to call ``print`` (the CLI surface).
PRINT_ALLOWED_MODULES = {"repro.cli", "repro.__main__"}

#: Module prefixes where broad ``except Exception`` is sanctioned:
#: the resilience layer (containing arbitrary component failure is its
#: purpose), the concurrency executor and eval harnesses (reporting
#: worker-thread failures across a thread boundary), and the CLI
#: surface (turning any failure into an exit code).
BROAD_EXCEPT_BOUNDARIES = (
    "repro.resilience",
    "repro.concurrency.executor",
    "repro.eval",
    "repro.cli",
    "repro.__main__",
)

#: Function names treated as the ranking hot path for ``HYG004``.
HOT_FUNCTIONS = {"search_cs", "rank_rows", "rank_cs_batch"}

#: Metric-recording method names that must be gated on the hot path.
_METRIC_METHODS = {"inc", "observe", "set_gauge"}

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "OrderedDict", "deque"}


def _is_bare_lock_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in ("Lock", "RLock"):
        return isinstance(func.value, ast.Name) and func.value.id == "threading"
    if isinstance(func, ast.Name) and func.id in ("Lock", "RLock"):
        # ``from threading import Lock`` style; the names are unique
        # enough in this codebase that a bare call is the real thing.
        return True
    return False


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        # An empty tuple or frozenset is fine; these literals are not.
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


def _in_broad_except_boundary(module_name: str) -> bool:
    return any(
        module_name == prefix or module_name.startswith(prefix + ".")
        for prefix in BROAD_EXCEPT_BOUNDARIES
    )


def _broad_except_label(handler: ast.ExceptHandler) -> str | None:
    """``"bare except"``/``"except Exception"``/... when the handler is
    broad, ``None`` when it names specific exception types."""
    if handler.type is None:
        return "bare except"
    caught = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for caught_type in caught:
        if isinstance(caught_type, ast.Name) and caught_type.id in (
            "Exception",
            "BaseException",
        ):
            return f"except {caught_type.id}"
    return None


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler unconditionally re-raises the original
    exception (its last statement is a bare ``raise``)."""
    last = handler.body[-1]
    return isinstance(last, ast.Raise) and last.exc is None


def _condition_mentions_enabled(test: ast.expr) -> bool:
    return any(
        isinstance(node, ast.Attribute) and node.attr == "enabled"
        for node in ast.walk(test)
    )


_COMPOUND_STMTS = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.With,
    ast.AsyncWith,
    ast.Try,
)


def _metric_calls_in(node: ast.AST) -> list[ast.Call]:
    return [
        sub
        for sub in ast.walk(node)
        if isinstance(sub, ast.Call)
        and isinstance(sub.func, ast.Attribute)
        and sub.func.attr in _METRIC_METHODS
    ]


def _gated_metric_calls(
    body: list[ast.stmt], gated: bool, out: list[tuple[ast.Call, bool]]
) -> None:
    """Collect metric-recording calls with their guard status.

    ``gated`` is True once we are lexically inside the body of an
    ``if <...>.enabled:`` test; calls in the guard expression itself
    or in ``else`` branches stay un-gated.
    """
    for statement in body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # a nested def runs on its own schedule, not here
        if isinstance(statement, ast.If):
            out.extend((call, gated) for call in _metric_calls_in(statement.test))
            branch_gated = gated or _condition_mentions_enabled(statement.test)
            _gated_metric_calls(statement.body, branch_gated, out)
            _gated_metric_calls(statement.orelse, gated, out)
        elif isinstance(statement, _COMPOUND_STMTS):
            for expr in (
                getattr(statement, "test", None),
                getattr(statement, "iter", None),
                *(item.context_expr for item in getattr(statement, "items", [])),
            ):
                if expr is not None:
                    out.extend((call, gated) for call in _metric_calls_in(expr))
            for attr in ("body", "orelse", "finalbody"):
                _gated_metric_calls(getattr(statement, attr, []) or [], gated, out)
            for handler in getattr(statement, "handlers", []):
                _gated_metric_calls(handler.body, gated, out)
        else:
            out.extend((call, gated) for call in _metric_calls_in(statement))


def check_hygiene(modules: list[SourceModule]) -> list[Finding]:
    """Run the hygiene rules over the collected modules."""
    findings: list[Finding] = []
    for module in modules:
        in_concurrency = module.name.startswith("repro.concurrency")
        broad_except_ok = _in_broad_except_boundary(module.name)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                label = _broad_except_label(node)
                if label is not None and not broad_except_ok and not _reraises(node):
                    findings.append(
                        Finding(
                            rule="HYG005",
                            category="hygiene",
                            module=module.name,
                            path=str(module.path),
                            line=node.lineno,
                            message=(
                                f"{label} outside a sanctioned failure "
                                "boundary: catch the specific ReproError "
                                "subtype, or move the containment into "
                                "repro.resilience"
                            ),
                        )
                    )
            elif isinstance(node, ast.Call):
                if not in_concurrency and _is_bare_lock_call(node):
                    findings.append(
                        Finding(
                            rule="HYG001",
                            category="hygiene",
                            module=module.name,
                            path=str(module.path),
                            line=node.lineno,
                            message=(
                                "bare threading lock: use repro.concurrency."
                                "Mutex/RWLock so the lock carries a hierarchy "
                                "level and the sanitizer can see it"
                            ),
                        )
                    )
                elif (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "print"
                    and module.name not in PRINT_ALLOWED_MODULES
                ):
                    findings.append(
                        Finding(
                            rule="HYG002",
                            category="hygiene",
                            module=module.name,
                            path=str(module.path),
                            line=node.lineno,
                            message=(
                                "print in library code: return strings or "
                                "record via repro.obs; stdout belongs to the "
                                "CLI surface only"
                            ),
                        )
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    default
                    for default in node.args.kw_defaults
                    if default is not None
                ]
                for default in defaults:
                    if _is_mutable_default(default):
                        findings.append(
                            Finding(
                                rule="HYG003",
                                category="hygiene",
                                module=module.name,
                                path=str(module.path),
                                line=default.lineno,
                                message=(
                                    f"mutable default argument in "
                                    f"{node.name}(): defaults are evaluated "
                                    "once and shared across calls"
                                ),
                                function=node.name,
                            )
                        )
                if node.name in HOT_FUNCTIONS:
                    calls: list[tuple[ast.Call, bool]] = []
                    _gated_metric_calls(node.body, False, calls)
                    for call, gated in calls:
                        if not gated:
                            method = call.func.attr  # type: ignore[union-attr]
                            findings.append(
                                Finding(
                                    rule="HYG004",
                                    category="hygiene",
                                    module=module.name,
                                    path=str(module.path),
                                    line=call.lineno,
                                    message=(
                                        f"un-gated metrics call .{method}() "
                                        f"in hot path {node.name}(): wrap it "
                                        "in `if registry.enabled:` so the "
                                        "disabled cost stays one branch"
                                    ),
                                    function=node.name,
                                )
                            )
    return findings
