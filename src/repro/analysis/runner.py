"""Entry points: run every checker family and aggregate the findings."""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.callgraph import Program
from repro.analysis.contracts import check_contracts
from repro.analysis.effects import check_blocking
from repro.analysis.findings import (
    Finding,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.hygiene import check_hygiene
from repro.analysis.layering import check_layering
from repro.analysis.lockorder import EXTRA_CALL_EDGES, check_lock_order
from repro.analysis.modules import SourceModule, collect_modules
from repro.exceptions import ReproError

__all__ = ["AnalysisReport", "analyze", "analyze_modules", "load_baseline"]

#: ``# analysis: allow BLOCK001 the WAL fsync is the store's job``
_SUPPRESSION = re.compile(
    r"#\s*analysis:\s*allow\s+(?P<rule>[A-Z]+[0-9]+)\s+(?P<reason>\S.*)$"
)


@dataclass
class AnalysisReport:
    """All findings from one analysis run.

    ``findings`` are the *active* violations (they fail the build);
    ``suppressed`` were matched by an in-source suppression comment or
    a baseline entry and are reported but do not fail.
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the tree has no active findings."""
        return not self.findings

    def by_category(self, category: str) -> list[Finding]:
        """The active findings of one checker family."""
        return [f for f in self.findings if f.category == category]

    def by_rule(self, rule: str) -> list[Finding]:
        """The active findings of one rule id."""
        return [f for f in self.findings if f.rule == rule]

    def render(self, format: str = "text") -> str:
        """The report as ``"text"``, ``"json"`` or ``"sarif"``."""
        if format == "json":
            return render_json(self.findings, self.suppressed)
        if format == "sarif":
            return render_sarif(self.findings, self.suppressed)
        return render_text(self.findings, self.suppressed)


def _suppressed_rules(module: SourceModule, line: int) -> dict[str, str]:
    """Suppression comments on ``line`` or the line above, rule -> reason."""
    rules: dict[str, str] = {}
    for candidate in (line, line - 1):
        if 1 <= candidate <= len(module.lines):
            match = _SUPPRESSION.search(module.lines[candidate - 1])
            if match:
                rules[match.group("rule")] = match.group("reason").strip()
    return rules


def _split_suppressed(
    findings: list[Finding], modules: list[SourceModule]
) -> tuple[list[Finding], list[Finding]]:
    by_name = {module.name: module for module in modules}
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        module = by_name.get(finding.module)
        if module is not None and finding.rule in _suppressed_rules(
            module, finding.line
        ):
            suppressed.append(finding)
        else:
            active.append(finding)
    return active, suppressed


def load_baseline(path: Path) -> list[dict[str, object]]:
    """Parse a baseline file: ``{"findings": [{rule, module, ...}]}``.

    Each entry must name at least ``rule`` and ``module``; ``function``
    and ``line`` narrow the match when present. Unknown keys error so
    typos do not silently baseline nothing.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ReproError(f"cannot read baseline {path}: {error}") from error
    entries = payload.get("findings") if isinstance(payload, dict) else None
    if not isinstance(entries, list):
        raise ReproError(f"baseline {path} must be {{'findings': [...]}}")
    allowed = {"rule", "module", "function", "line", "reason"}
    for entry in entries:
        if not isinstance(entry, dict) or not {"rule", "module"} <= entry.keys():
            raise ReproError(f"baseline entry {entry!r} needs 'rule' and 'module'")
        unknown = entry.keys() - allowed
        if unknown:
            raise ReproError(f"baseline entry {entry!r}: unknown keys {sorted(unknown)}")
    return entries


def _matches_baseline(finding: Finding, entry: dict[str, object]) -> bool:
    if entry["rule"] != finding.rule or entry["module"] != finding.module:
        return False
    if "function" in entry and entry["function"] != finding.function:
        return False
    if "line" in entry and entry["line"] != finding.line:
        return False
    return True


def _apply_baseline(
    findings: list[Finding], baseline: list[dict[str, object]]
) -> tuple[list[Finding], list[Finding]]:
    active: list[Finding] = []
    matched: list[Finding] = []
    for finding in findings:
        if any(_matches_baseline(finding, entry) for entry in baseline):
            matched.append(finding)
        else:
            active.append(finding)
    return active, matched


def analyze_modules(
    modules: list[SourceModule],
    extra_edges: tuple[tuple[str, str], ...] = EXTRA_CALL_EDGES,
    baseline: list[dict[str, object]] | None = None,
) -> AnalysisReport:
    """Run all checker families over already-collected modules."""
    program = Program(modules)
    findings = [
        *check_lock_order(modules, extra_edges),
        *check_layering(modules),
        *check_hygiene(modules),
        *check_blocking(program, extra_edges),
        *check_contracts(program, extra_edges),
    ]
    active, suppressed = _split_suppressed(findings, modules)
    if baseline:
        active, baselined = _apply_baseline(active, baseline)
        suppressed.extend(baselined)
    return AnalysisReport(findings=active, suppressed=suppressed)


def analyze(
    root: Path | None = None,
    baseline: list[dict[str, object]] | None = None,
) -> AnalysisReport:
    """Analyze the package tree rooted at ``root``.

    ``root`` is the directory containing the package's ``__init__.py``;
    it defaults to the installed :mod:`repro` package itself, so
    ``python -m repro analyze`` checks the code it runs from.
    """
    if root is None:
        import repro

        root = Path(repro.__file__).parent
    return analyze_modules(collect_modules(Path(root)), baseline=baseline)
