"""Entry points: run every checker family and aggregate the findings."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding, render_json, render_text
from repro.analysis.hygiene import check_hygiene
from repro.analysis.layering import check_layering
from repro.analysis.lockorder import EXTRA_CALL_EDGES, check_lock_order
from repro.analysis.modules import SourceModule, collect_modules

__all__ = ["AnalysisReport", "analyze", "analyze_modules"]


@dataclass
class AnalysisReport:
    """All findings from one analysis run."""

    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the tree is clean."""
        return not self.findings

    def by_category(self, category: str) -> list[Finding]:
        """The findings of one checker family."""
        return [f for f in self.findings if f.category == category]

    def by_rule(self, rule: str) -> list[Finding]:
        """The findings of one rule id."""
        return [f for f in self.findings if f.rule == rule]

    def render(self, format: str = "text") -> str:
        """The report as ``"text"`` or ``"json"``."""
        if format == "json":
            return render_json(self.findings)
        return render_text(self.findings)


def analyze_modules(
    modules: list[SourceModule],
    extra_edges: tuple[tuple[str, str], ...] = EXTRA_CALL_EDGES,
) -> AnalysisReport:
    """Run all three checker families over already-collected modules."""
    findings = [
        *check_lock_order(modules, extra_edges),
        *check_layering(modules),
        *check_hygiene(modules),
    ]
    return AnalysisReport(findings=findings)


def analyze(root: Path | None = None) -> AnalysisReport:
    """Analyze the package tree rooted at ``root``.

    ``root`` is the directory containing the package's ``__init__.py``;
    it defaults to the installed :mod:`repro` package itself, so
    ``python -m repro analyze`` checks the code it runs from.
    """
    if root is None:
        import repro

        root = Path(repro.__file__).parent
    return analyze_modules(collect_modules(Path(root)))
