"""Finding records and report rendering for the static checkers."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

__all__ = ["Finding", "render_json", "render_text"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: Stable rule id (``LOCK001``, ``LAYER001``, ``HYG003``...).
        category: Checker family: ``lock-order``, ``layering`` or
            ``hygiene``.
        module: Dotted module name the finding is in.
        path: File path (as collected; relative or absolute).
        line: 1-based line number of the offending node.
        message: Human-readable description of the violation.
        function: Qualified function name, when the rule is scoped to
            one (``Class.method`` or a bare function name).
    """

    rule: str
    category: str
    module: str
    path: str
    line: int
    message: str
    function: str | None = None

    def location(self) -> str:
        """``path:line`` - the clickable source location."""
        return f"{self.path}:{self.line}"


def _sort_key(finding: Finding) -> tuple[str, str, int, str]:
    return (finding.category, finding.path, finding.line, finding.rule)


def render_text(findings: list[Finding]) -> str:
    """The findings as a line-per-finding human-readable report."""
    if not findings:
        return "analyze: 0 findings"
    lines = [
        f"{finding.location()}: {finding.rule} [{finding.category}] "
        f"{finding.message}"
        for finding in sorted(findings, key=_sort_key)
    ]
    lines.append(f"analyze: {len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    """The findings as a JSON report (stable field order, sorted)."""
    payload = {
        "findings": [asdict(f) for f in sorted(findings, key=_sort_key)],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2)
