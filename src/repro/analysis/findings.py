"""Finding records and report rendering for the static checkers."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

__all__ = [
    "Finding",
    "RULES",
    "render_json",
    "render_sarif",
    "render_text",
]

#: Every rule id the analyzer can emit, with a short description.
#: Drives the SARIF rule table and keeps ids from drifting silently.
RULES: dict[str, str] = {
    "LOCK001": "Lock acquired out of hierarchy order",
    "LOCK002": "Unranked lock acquired while a ranked lock is held",
    "LAYER001": "Import from a higher or sideways layer",
    "LAYER002": "Import from an unknown module outside the layer map",
    "HYG001": "print() in library code",
    "HYG002": "Mutable default argument",
    "HYG003": "TODO/FIXME marker committed",
    "HYG004": "assert used for runtime validation in library code",
    "HYG005": "Broad exception handler outside sanctioned boundaries",
    "BLOCK001": "May-block call reachable while a ranked lock is held",
    "FAULT001": "Registered fault site is never fired",
    "FAULT002": "Fired fault site is never registered",
    "EXC001": "Non-degradable exception swallowed by a broad handler",
    "SCHEMA001": "Op literal outside the declared record/frame vocabulary",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: Stable rule id (``LOCK001``, ``BLOCK001``, ``EXC001``...).
        category: Checker family: ``lock-order``, ``layering``,
            ``hygiene``, ``effects`` or ``contracts``.
        module: Dotted module name the finding is in.
        path: File path (as collected; relative or absolute).
        line: 1-based line number of the offending node.
        message: Human-readable description of the violation.
        function: Qualified function name, when the rule is scoped to
            one (``Class.method`` or a bare function name).
        chain: Provenance, outermost call first, when the finding was
            reached transitively (``("Store.append", "Wal.flush")``).
    """

    rule: str
    category: str
    module: str
    path: str
    line: int
    message: str
    function: str | None = None
    chain: tuple[str, ...] = ()

    def location(self) -> str:
        """``path:line`` - the clickable source location."""
        return f"{self.path}:{self.line}"


def _sort_key(finding: Finding) -> tuple[str, str, int, str]:
    return (finding.category, finding.path, finding.line, finding.rule)


def _text_line(finding: Finding) -> str:
    line = (
        f"{finding.location()}: {finding.rule} [{finding.category}] "
        f"{finding.message}"
    )
    if finding.chain:
        line += f" (via {' -> '.join(finding.chain)})"
    return line


def render_text(findings: list[Finding], suppressed: list[Finding] | None = None) -> str:
    """The findings as a line-per-finding human-readable report."""
    note = f" ({len(suppressed)} suppressed)" if suppressed else ""
    if not findings:
        return f"analyze: 0 findings{note}"
    lines = [_text_line(finding) for finding in sorted(findings, key=_sort_key)]
    lines.append(f"analyze: {len(findings)} finding(s){note}")
    return "\n".join(lines)


def render_json(findings: list[Finding], suppressed: list[Finding] | None = None) -> str:
    """The findings as a JSON report (stable field order, sorted)."""
    payload = {
        "findings": [asdict(f) for f in sorted(findings, key=_sort_key)],
        "count": len(findings),
        "suppressed": [asdict(f) for f in sorted(suppressed or [], key=_sort_key)],
        "suppressed_count": len(suppressed or []),
    }
    return json.dumps(payload, indent=2)


def _sarif_result(finding: Finding, suppressed: bool) -> dict[str, object]:
    message = finding.message
    if finding.chain:
        message += f" (via {' -> '.join(finding.chain)})"
    result: dict[str, object] = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {"startLine": finding.line},
                }
            }
        ],
        "properties": {
            "category": finding.category,
            "module": finding.module,
            "function": finding.function,
            "chain": list(finding.chain),
        },
    }
    if suppressed:
        result["suppressions"] = [{"kind": "inSource"}]
    return result


def render_sarif(findings: list[Finding], suppressed: list[Finding] | None = None) -> str:
    """The findings as a SARIF 2.1.0 log (one run, one driver)."""
    results = [
        _sarif_result(finding, suppressed=False)
        for finding in sorted(findings, key=_sort_key)
    ]
    results.extend(
        _sarif_result(finding, suppressed=True)
        for finding in sorted(suppressed or [], key=_sort_key)
    )
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri": "https://example.invalid/repro",
                        "rules": [
                            {
                                "id": rule,
                                "shortDescription": {"text": description},
                            }
                            for rule, description in sorted(RULES.items())
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)
