"""Symbol tables, lightweight type inference and lock summaries.

The lock-order checker (:mod:`repro.analysis.lockorder`) needs three
things this module computes from the parsed sources:

* a **lock table**: every lock the code constructs, keyed by its owner
  (``Relation._lock``, ``PersonalizationService._registry_lock``...)
  with its hierarchy level and kind (mutex / rw / striped);
* per-function **acquisition summaries**: which locks each function
  acquires directly, in which mode, and which locks are lexically held
  at each acquisition and call site (``with`` regions);
* a **call graph** precise enough to follow the real chains: ``self``
  methods, methods on attributes and locals whose classes are known,
  constructor calls, and imported module functions.

The type inference is deliberately lightweight - parameter and return
annotations, ``x = ClassName(...)`` locals, dataclass field
annotations, and ``__init__`` parameter-to-attribute propagation
(``self._cache = cache``). A call that cannot be resolved becomes an
unresolved call site rather than an error; the lock-order checker uses
those sites to anchor configured dynamic-dispatch edges (listener
callbacks) and ignores the rest. The approximation trades soundness
for zero false positives on this codebase's idioms; every rule still
has a deliberately-violating fixture proving it fires.

Nested functions and lambdas are scanned at their definition site with
the locks lexically held there - right for the two patterns the code
uses them in (closures invoked inside the same region, and callbacks
that run on other threads holding nothing).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.concurrency import locks as _locks
from repro.analysis.modules import SourceModule

__all__ = [
    "Acquire",
    "CallSite",
    "ClassInfo",
    "FunctionSummary",
    "LockRef",
    "Program",
    "level_name",
]

#: ``LEVEL_USER`` -> 10 etc., straight from the one source of truth.
LEVEL_CONSTANTS: dict[str, int] = {
    name: getattr(_locks, name) for name in dir(_locks) if name.startswith("LEVEL_")
}

#: Constructor name -> lock kind.
LOCK_CLASSES = {"Mutex": "mutex", "RWLock": "rw", "StripedLockTable": "striped"}

#: The modules implementing the primitives themselves; their internal
#: acquire/release (and sanitizer patching) plumbing is not application
#: lock or blocking usage.
PRIMITIVES_SUFFIXES = (".concurrency.locks", ".concurrency.blocking")

#: Backwards-compatible alias for the original single-module constant.
PRIMITIVES_SUFFIX = PRIMITIVES_SUFFIXES[0]


def level_name(level: int | None) -> str:
    """Human-readable form of a hierarchy level for messages."""
    if level is None:
        return "unranked"
    name = _locks.LOCK_LEVEL_NAMES.get(level)
    return f"{name}({level})" if name else str(level)


@dataclass(frozen=True)
class LockRef:
    """One lock the program constructs."""

    key: str  # "Relation._lock", "query_many.errors_lock", ...
    level: int | None
    kind: str  # "mutex" | "rw" | "striped"


@dataclass(frozen=True)
class Acquire:
    """One lock acquisition: which lock, in which mode, where."""

    lock: LockRef
    mode: str  # "read" | "write" | "mutex"
    line: int


@dataclass
class CallSite:
    """One call with the locks lexically held around it."""

    callee: str | None  # resolved function id, or None
    line: int
    held: tuple[Acquire, ...]
    node: ast.Call | None = None  # the syntax, for effect classification


@dataclass
class FunctionSummary:
    """Per-function facts the fixed-point propagation consumes."""

    qualname: str  # "module:Class.method" or "module:function"
    display: str  # "Class.method" / "function" (for messages)
    module: str
    path: str
    acquires: list[tuple[Acquire, tuple[Acquire, ...]]] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)


@dataclass
class ClassInfo:
    """One class: its lock attributes, typed attributes and methods."""

    name: str
    module: str
    node: ast.ClassDef
    bases: tuple[str, ...] = ()
    attr_locks: dict[str, LockRef] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    returns: dict[str, str] = field(default_factory=dict)  # method -> class name

    @property
    def qualname(self) -> str:
        return f"{self.module}:{self.name}"


@dataclass
class _ModuleScope:
    """One module's name bindings (own defs + imports)."""

    source: SourceModule
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    imports: dict[str, tuple[str, str]] = field(default_factory=dict)  # local -> (module, name)


def _annotation_class(node: ast.expr | None) -> str | None:
    """The class name an annotation resolves to, stripped of Optional.

    ``ContextQueryTree | None`` -> ``ContextQueryTree``; containers and
    anything fancier resolve to ``None`` (unknown).
    """
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return None if node.id == "None" else node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant):
        if isinstance(node.value, str):
            text = node.value.strip()
            return text.rsplit(".", 1)[-1] if text.isidentifier() or "." in text else None
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_class(node.left)
        return left if left is not None else _annotation_class(node.right)
    if isinstance(node, ast.Subscript):
        value = _annotation_class(node.value)
        if value == "Optional":
            return _annotation_class(node.slice)
        return None  # list[...], dict[...]: not a class we track
    return None


def _base_name(node: ast.expr) -> str | None:
    """Bare class name of a base-class expression, if it has one."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):  # Generic[T] and friends
        return _base_name(node.value)
    return None


def _call_name(node: ast.Call) -> str | None:
    """Bare constructor name of a call (``Mutex(...)`` -> ``Mutex``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _lock_level(node: ast.Call) -> int | None:
    """The ``level=`` argument of a lock constructor, if resolvable."""
    for keyword in node.keywords:
        if keyword.arg != "level":
            continue
        value = keyword.value
        if isinstance(value, ast.Constant) and isinstance(value.value, int):
            return value.value
        if isinstance(value, ast.Name):
            return LEVEL_CONSTANTS.get(value.id)
        if isinstance(value, ast.Attribute):
            return LEVEL_CONSTANTS.get(value.attr)
    return None


def _lock_from_call(node: ast.Call, key: str) -> LockRef | None:
    """A :class:`LockRef` if ``node`` constructs a lock primitive."""
    kind = LOCK_CLASSES.get(_call_name(node) or "")
    if kind is None:
        return None
    return LockRef(key=key, level=_lock_level(node), kind=kind)


class Program:
    """The whole analyzed source set, cross-linked.

    Build one from collected modules, then read ``functions`` (the
    per-function summaries) and ``locks`` (every constructed lock).
    """

    def __init__(self, modules: list[SourceModule]) -> None:
        self.modules: dict[str, _ModuleScope] = {}
        self.functions: dict[str, FunctionSummary] = {}
        self.locks: dict[str, LockRef] = {}
        self._collect(modules)
        self._build_classes()
        self._inherit_attrs()
        self._scan_functions()
        self._overrides: dict[str, tuple[str, ...]] | None = None

    # ------------------------------------------------------------------
    # Pass 1: module scopes (defs + import bindings)
    # ------------------------------------------------------------------
    def _collect(self, modules: list[SourceModule]) -> None:
        for source in modules:
            if source.name.endswith(PRIMITIVES_SUFFIXES):
                continue  # the primitives' own implementation
            scope = _ModuleScope(source=source)
            for statement in source.tree.body:
                if isinstance(statement, ast.ClassDef):
                    scope.classes[statement.name] = ClassInfo(
                        name=statement.name,
                        module=source.name,
                        node=statement,
                        bases=tuple(
                            base
                            for base in map(_base_name, statement.bases)
                            if base is not None
                        ),
                    )
                elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scope.functions[statement.name] = statement
                elif isinstance(statement, ast.ImportFrom) and statement.module:
                    if not statement.level:
                        for alias in statement.names:
                            local = alias.asname or alias.name
                            scope.imports[local] = (statement.module, alias.name)
            self.modules[source.name] = scope

    def _resolve_name(
        self, scope: _ModuleScope, name: str, _seen: frozenset[str] = frozenset()
    ) -> ClassInfo | tuple[_ModuleScope, str] | None:
        """What ``name`` means in ``scope``: a class, or a function's
        ``(defining scope, name)``; follows one-hop package re-exports."""
        if name in scope.classes:
            return scope.classes[name]
        if name in scope.functions:
            return (scope, name)
        target = scope.imports.get(name)
        if target is None:
            return None
        target_module, target_name = target
        if (key := f"{target_module}:{target_name}") in _seen:
            return None
        target_scope = self.modules.get(target_module)
        if target_scope is None:
            return None
        return self._resolve_name(target_scope, target_name, _seen | {key})

    def class_named(self, scope: _ModuleScope, name: str | None) -> ClassInfo | None:
        if name is None:
            return None
        resolved = self._resolve_name(scope, name)
        if isinstance(resolved, ClassInfo):
            return resolved
        # Fall back to a global unique-name lookup: annotations often
        # name classes that are only imported under TYPE_CHECKING.
        matches = [
            module.classes[name]
            for module in self.modules.values()
            if name in module.classes
        ]
        return matches[0] if len(matches) == 1 else None

    def method_overrides(self) -> dict[str, tuple[str, ...]]:
        """Base-method qualname -> qualnames of subclass overrides.

        Lets effect/contract propagation follow abstract-method dispatch
        (``ProfileStore._append_records`` -> the jsonl/sqlite bodies).
        Subclass links are by base *name*, transitively, across modules.
        """
        if self._overrides is not None:
            return self._overrides
        classes = [
            info for scope in self.modules.values() for info in scope.classes.values()
        ]
        subclasses: dict[str, list[ClassInfo]] = {}
        for info in classes:
            for base in info.bases:
                subclasses.setdefault(base, []).append(info)

        def descendants(name: str, seen: set[str]) -> list[ClassInfo]:
            found: list[ClassInfo] = []
            for child in subclasses.get(name, []):
                if child.qualname in seen:
                    continue
                seen.add(child.qualname)
                found.append(child)
                found.extend(descendants(child.name, seen))
            return found

        overrides: dict[str, tuple[str, ...]] = {}
        for info in classes:
            heirs = descendants(info.name, set())
            if not heirs:
                continue
            for method in info.methods:
                targets = tuple(
                    f"{heir.qualname}.{method}"
                    for heir in heirs
                    if method in heir.methods
                )
                if targets:
                    overrides[f"{info.qualname}.{method}"] = targets
        self._overrides = overrides
        return overrides

    # ------------------------------------------------------------------
    # Pass 2: per-class lock and attribute-type tables
    # ------------------------------------------------------------------
    def _build_classes(self) -> None:
        for scope in self.modules.values():
            for info in scope.classes.values():
                self._build_class(scope, info)

    def _factory_lock(self, scope: _ModuleScope, node: ast.Call, key: str) -> LockRef | None:
        """A lock built by ``field(default_factory=<helper>)``."""
        if _call_name(node) != "field":
            return None
        for keyword in node.keywords:
            if keyword.arg == "default_factory" and isinstance(keyword.value, ast.Name):
                helper = scope.functions.get(keyword.value.id)
                if helper is None:
                    return None
                for statement in ast.walk(helper):
                    if (
                        isinstance(statement, ast.Return)
                        and isinstance(statement.value, ast.Call)
                    ):
                        return _lock_from_call(statement.value, key)
        return None

    def _build_class(self, scope: _ModuleScope, info: ClassInfo) -> None:
        for statement in info.node.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                attr = statement.target.id
                key = f"{info.name}.{attr}"
                lock = None
                if isinstance(statement.value, ast.Call):
                    lock = self._factory_lock(
                        scope, statement.value, key
                    ) or _lock_from_call(statement.value, key)
                if lock is not None:
                    info.attr_locks[attr] = lock
                    self.locks[key] = lock
                else:
                    annotated = _annotation_class(statement.annotation)
                    if annotated is not None:
                        info.attr_types[attr] = annotated
            elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[statement.name] = statement
                returns = _annotation_class(statement.returns)
                if returns is not None:
                    info.returns[statement.name] = returns
        # ``self.X = ...`` assignments anywhere in the class's methods.
        for method in info.methods.values():
            params = {
                arg.arg: _annotation_class(arg.annotation)
                for arg in [*method.args.args, *method.args.kwonlyargs]
            }
            for node in ast.walk(method):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    attr = target.attr
                    key = f"{info.name}.{attr}"
                    if isinstance(node.value, ast.Call):
                        lock = _lock_from_call(node.value, key)
                        if lock is not None:
                            info.attr_locks[attr] = lock
                            self.locks[key] = lock
                            continue
                        called = self.class_named(scope, _call_name(node.value))
                        if called is not None:
                            info.attr_types.setdefault(attr, called.name)
                    elif isinstance(node.value, ast.Name):
                        annotated = params.get(node.value.id)
                        if annotated is not None:
                            info.attr_types.setdefault(attr, annotated)
                    if isinstance(node, ast.AnnAssign):
                        annotated = _annotation_class(node.annotation)
                        if annotated is not None:
                            info.attr_types.setdefault(attr, annotated)

    def _inherit_attrs(self) -> None:
        """Copy base-class attribute locks/types down to subclasses.

        ``ProfileStore.__init__`` builds ``self._lock``; the jsonl and
        sqlite subclasses acquire it. Without this pass their ``with
        self._lock:`` regions would be invisible to every checker.
        """
        changed = True
        while changed:
            changed = False
            for scope in self.modules.values():
                for info in scope.classes.values():
                    for base_name in info.bases:
                        base = self.class_named(scope, base_name)
                        if base is None or base is info:
                            continue
                        for attr, lock in base.attr_locks.items():
                            if attr not in info.attr_locks:
                                info.attr_locks[attr] = lock
                                changed = True
                        for attr, type_name in base.attr_types.items():
                            if attr not in info.attr_types:
                                info.attr_types[attr] = type_name
                                changed = True

    # ------------------------------------------------------------------
    # Pass 3: per-function acquisition/call summaries
    # ------------------------------------------------------------------
    def _scan_functions(self) -> None:
        for scope in self.modules.values():
            for name, node in scope.functions.items():
                self._scan_one(scope, None, name, node)
            for info in scope.classes.values():
                for name, node in info.methods.items():
                    self._scan_one(scope, info, name, node)

    def _scan_one(
        self,
        scope: _ModuleScope,
        cls: ClassInfo | None,
        name: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        display = f"{cls.name}.{name}" if cls is not None else name
        summary = FunctionSummary(
            qualname=f"{scope.source.name}:{display}",
            display=display,
            module=scope.source.name,
            path=str(scope.source.path),
        )
        _FunctionScanner(self, scope, cls, summary, node).run()
        self.functions[summary.qualname] = summary


class _FunctionScanner:
    """Walks one function body tracking the lexically held locks."""

    def __init__(
        self,
        program: Program,
        scope: _ModuleScope,
        cls: ClassInfo | None,
        summary: FunctionSummary,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        self.program = program
        self.scope = scope
        self.cls = cls
        self.summary = summary
        self.node = node
        self.local_types: dict[str, str] = {}
        self.local_locks: dict[str, LockRef] = {}
        for arg in [*node.args.args, *node.args.kwonlyargs]:
            annotated = _annotation_class(arg.annotation)
            if annotated is not None:
                self.local_types[arg.arg] = annotated
        if cls is not None:
            self.local_types["self"] = cls.name

    def run(self) -> None:
        self._statements(self.node.body, ())

    # -- type and lock resolution ----------------------------------------
    def _type_of(self, node: ast.expr) -> ClassInfo | None:
        if isinstance(node, ast.Name):
            return self.program.class_named(self.scope, self.local_types.get(node.id))
        if isinstance(node, ast.Attribute):
            owner = self._type_of(node.value)
            if owner is None:
                return None
            name = owner.attr_types.get(node.attr) or owner.returns.get(node.attr)
            return self.program.class_named(self.scope, name)
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name):
                constructed = self.program._resolve_name(self.scope, node.func.id)
                if isinstance(constructed, ClassInfo):
                    return constructed  # covers dataclass-generated inits
            callee = self._resolve_call(node)
            if callee is None:
                return None
            if callee.endswith(".__init__"):
                class_name = callee[: -len(".__init__")].rsplit(":", 1)[-1].rsplit(".", 1)[-1]
                return self.program.class_named(self.scope, class_name)
            return self._return_type_of(callee)
        return None

    def _return_type_of(self, callee: str) -> ClassInfo | None:
        module, _, display = callee.partition(":")
        scope = self.program.modules.get(module)
        if scope is None:
            return None
        if "." in display:
            class_name, method = display.rsplit(".", 1)
            owner = scope.classes.get(class_name)
            if owner is None:
                return None
            return self.program.class_named(scope, owner.returns.get(method))
        function = scope.functions.get(display)
        if function is None:
            return None
        return self.program.class_named(scope, _annotation_class(function.returns))

    def _lock_of(self, node: ast.expr) -> LockRef | None:
        if isinstance(node, ast.Name):
            return self.local_locks.get(node.id)
        if isinstance(node, ast.Attribute):
            owner = self._type_of(node.value)
            if owner is not None:
                return owner.attr_locks.get(node.attr)
        return None

    def _as_acquire(self, expr: ast.expr) -> Acquire | None:
        """Classify a ``with`` item as a lock acquisition, if it is one."""
        lock = self._lock_of(expr)
        if lock is not None:
            return Acquire(lock=lock, mode="mutex", line=expr.lineno)
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            mode = {"read_locked": "read", "write_locked": "write"}.get(expr.func.attr)
            if mode is not None:
                lock = self._lock_of(expr.func.value)
                if lock is not None:
                    return Acquire(lock=lock, mode=mode, line=expr.lineno)
        return None

    # -- call resolution -------------------------------------------------
    def _resolve_call(self, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Name):
            resolved = self.program._resolve_name(self.scope, func.id)
            if isinstance(resolved, ClassInfo):
                if "__init__" in resolved.methods:
                    return f"{resolved.module}:{resolved.name}.__init__"
                return None  # dataclass-generated init: nothing to follow
            if resolved is not None:
                def_scope, name = resolved
                return f"{def_scope.source.name}:{name}"
            return None
        if isinstance(func, ast.Attribute):
            owner = self._type_of(func.value)
            if owner is not None and func.attr in owner.methods:
                return f"{owner.module}:{owner.name}.{func.attr}"
        return None

    # -- the walk ---------------------------------------------------------
    def _statements(self, body: list[ast.stmt], held: tuple[Acquire, ...]) -> None:
        for statement in body:
            self._statement(statement, held)

    def _statement(self, statement: ast.stmt, held: tuple[Acquire, ...]) -> None:
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            inner = held
            for item in statement.items:
                acquire = self._as_acquire(item.context_expr)
                if acquire is not None:
                    self.summary.acquires.append((acquire, inner))
                    inner = (*inner, acquire)
                else:
                    self._expression(item.context_expr, inner)
            self._statements(statement.body, inner)
            return
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs: scanned at the definition site (see module
            # docstring for why that approximation is right here).
            self._statements(statement.body, held)
            return
        if isinstance(statement, ast.ClassDef):
            return
        if isinstance(statement, (ast.Assign, ast.AnnAssign)):
            self._bind(statement)
        for expr_field in ("value", "test", "iter", "exc", "msg"):
            value = getattr(statement, expr_field, None)
            if isinstance(value, ast.expr):
                self._expression(value, held)
        for body_field in ("body", "orelse", "finalbody"):
            inner = getattr(statement, body_field, None)
            if isinstance(inner, list) and inner and isinstance(inner[0], ast.stmt):
                self._statements(inner, held)
        for handler in getattr(statement, "handlers", []):
            self._statements(handler.body, held)
        if isinstance(statement, ast.Expr):
            return  # already visited via "value"

    def _bind(self, statement: ast.Assign | ast.AnnAssign) -> None:
        """Record local variable types/locks from an assignment."""
        targets = (
            statement.targets if isinstance(statement, ast.Assign) else [statement.target]
        )
        value = statement.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if isinstance(value, ast.Call):
                lock = _lock_from_call(
                    value, f"{self.summary.display}.{target.id}"
                )
                if lock is not None:
                    self.local_locks[target.id] = lock
                    self.program.locks[lock.key] = lock
                    continue
            typed = self._type_of(value) if value is not None else None
            if typed is None and isinstance(statement, ast.AnnAssign):
                typed = self.program.class_named(
                    self.scope, _annotation_class(statement.annotation)
                )
            if typed is not None:
                self.local_types[target.id] = typed.name

    def _expression(self, node: ast.expr, held: tuple[Acquire, ...]) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self.summary.calls.append(
                    CallSite(
                        callee=self._resolve_call(sub),
                        line=sub.lineno,
                        held=held,
                        node=sub,
                    )
                )
