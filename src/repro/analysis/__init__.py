"""Project-native static analysis: invariants ruff/mypy cannot see.

The serving stack's correctness rests on conventions that no generic
linter checks: the documented lock hierarchy (user > registry >
account > relation > cache > metrics), the package layering DAG
(context/hierarchy below preferences below tree below db below query
below service), and hot-path hygiene rules (no bare ``threading``
locks outside :mod:`repro.concurrency`, no ``print`` in library code,
no mutable default arguments, no un-gated metrics work inside the
``search_cs``/``rank_rows`` hot paths). One refactor can silently
break any of them - and a broken lock order is a deadlock waiting for
production traffic, while a stale-cache write corrupts the Def. 10-12
context-resolution results the paper's Theorem 1 depends on.

This package walks the source tree's ASTs and machine-checks five
families:

* :mod:`repro.analysis.lockorder` - extracts lock acquisitions per
  function, propagates them over an intra-package call graph, and
  flags hierarchy inversions and read->write upgrades;
* :mod:`repro.analysis.layering` - enforces the package DAG on
  module-level imports (deferred imports are exempt, except that
  nothing below the service layer may import it, ever);
* :mod:`repro.analysis.hygiene` - the hot-path rules above;
* :mod:`repro.analysis.effects` - fixed-point *may-block* effect
  inference (``BLOCK001``: socket/fsync/sleep/join reachable while a
  non-sanctioned ranked lock is held);
* :mod:`repro.analysis.contracts` - fault-site drift
  (``FAULT001/002``), non-degradable exception flow (``EXC001``) and
  WAL/frame op-vocabulary drift (``SCHEMA001``).

Run it as ``python -m repro analyze`` (text, ``--format json`` or
``--format sarif``; non-zero exit on unbaselined findings; sanctioned
violations carry an in-source ``# analysis: allow RULE reason``
comment or a ``--baseline`` entry). The runtime counterparts - the
held-lock stack in :mod:`repro.concurrency.locks` and the blocking
sanitizer in :mod:`repro.concurrency.blocking` - assert the same
contracts inside the stress suites.
"""

from repro.analysis.contracts import check_contracts
from repro.analysis.effects import check_blocking
from repro.analysis.findings import (
    RULES,
    Finding,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.modules import SourceModule, collect_modules, load_module
from repro.analysis.runner import (
    AnalysisReport,
    analyze,
    analyze_modules,
    load_baseline,
)

__all__ = [
    "RULES",
    "AnalysisReport",
    "Finding",
    "SourceModule",
    "analyze",
    "analyze_modules",
    "check_blocking",
    "check_contracts",
    "collect_modules",
    "load_baseline",
    "load_module",
    "render_json",
    "render_sarif",
    "render_text",
]
