"""Project-native static analysis: invariants ruff/mypy cannot see.

The serving stack's correctness rests on conventions that no generic
linter checks: the documented lock hierarchy (user > registry >
account > relation > cache > metrics), the package layering DAG
(context/hierarchy below preferences below tree below db below query
below service), and hot-path hygiene rules (no bare ``threading``
locks outside :mod:`repro.concurrency`, no ``print`` in library code,
no mutable default arguments, no un-gated metrics work inside the
``search_cs``/``rank_rows`` hot paths). One refactor can silently
break any of them - and a broken lock order is a deadlock waiting for
production traffic, while a stale-cache write corrupts the Def. 10-12
context-resolution results the paper's Theorem 1 depends on.

This package walks the source tree's ASTs and machine-checks all
three families:

* :mod:`repro.analysis.lockorder` - extracts lock acquisitions per
  function, propagates them over an intra-package call graph, and
  flags hierarchy inversions and read->write upgrades;
* :mod:`repro.analysis.layering` - enforces the package DAG on
  module-level imports (deferred imports are exempt, except that
  nothing below the service layer may import it, ever);
* :mod:`repro.analysis.hygiene` - the hot-path rules above.

Run it as ``python -m repro analyze`` (text or ``--format json``;
non-zero exit on findings). The runtime counterpart - a per-thread
held-lock stack asserting the same hierarchy on every acquire - lives
in :mod:`repro.concurrency.locks` and runs inside the stress tests.
"""

from repro.analysis.findings import Finding, render_json, render_text
from repro.analysis.modules import SourceModule, collect_modules, load_module
from repro.analysis.runner import AnalysisReport, analyze, analyze_modules

__all__ = [
    "AnalysisReport",
    "Finding",
    "SourceModule",
    "analyze",
    "analyze_modules",
    "collect_modules",
    "load_module",
    "render_json",
    "render_text",
]
