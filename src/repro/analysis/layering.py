"""Layering checker: the package import DAG, machine-enforced.

The architecture (see ``docs/architecture.md``) stacks the packages
so that every module-level import points *downward*::

    exceptions < concurrency.locks < obs < faults < resilience
               < concurrency < hierarchy < context < preferences
               < tree < db < resolution < io < storage < query < dsl
               < workloads < service < sharding < eval < analysis
               < (cli / __main__ / root)

``obs``, ``faults``, ``resilience`` and ``concurrency`` are utility
layers: importable from anywhere, never importing upward themselves
(``concurrency.locks`` sits below ``obs`` because the metric locks are
built from it; the executor above ``obs``/``faults`` because it
records metrics and hosts injection sites - those imports are deferred
for exactly that reason). ``faults`` and ``resilience`` sit below the
storage layers so the relation, cache and resolver can host injection
sites and classification tags as plain module-level imports.

Rules:

* ``LAYER001`` - a module-level import names a module in a strictly
  higher layer. Deferred (function-local) imports are exempt: they
  are the documented pattern for upward-looking facades such as
  :meth:`repro.preferences.repository.PreferenceRepository.to_json`,
  and imports under ``if TYPE_CHECKING:`` never execute at all.
* ``LAYER002`` - anything below the service layer imports
  ``repro.service``, at *any* nesting depth. A deferred import is
  still a runtime dependency; the storage engine calling up into the
  serving layer is an architecture inversion no laziness excuses.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.modules import SourceModule

__all__ = ["LAYERS", "check_layering", "layer_of"]

#: Package (or exact-module override) -> layer rank. Imports must not
#: point from a lower rank to a strictly higher one.
LAYERS: dict[str, int] = {
    "repro.exceptions": 0,
    "repro.concurrency.locks": 1,  # below obs: metric locks come from here
    "repro.concurrency.blocking": 1,  # sanitizer twin: faults/resilience use it
    "repro.obs": 2,
    "repro.faults": 3,  # injection sites live in every layer above
    "repro.resilience": 4,  # policies referenced from query/service
    "repro.concurrency": 5,  # executor records metrics (deferred import)
    "repro.hierarchy": 6,
    "repro.context": 7,
    "repro.preferences": 8,
    "repro.tree": 9,
    "repro.db": 10,
    "repro.resolution": 11,
    "repro.io": 12,
    "repro.storage": 13,  # WAL/snapshot persistence; reuses io's formats
    "repro.query": 14,
    "repro.dsl": 15,
    "repro.workloads": 16,
    "repro.service": 17,
    "repro.sharding": 18,  # front-end + workers over whole services
    "repro.eval": 19,
    "repro.analysis": 20,
    # CLI surface and the package root re-export everything.
    "repro.cli": 21,
    "repro.__main__": 21,
    "repro": 21,
}

_SERVICE_RANK = LAYERS["repro.service"]


def layer_of(module: str) -> int | None:
    """The layer rank of a dotted module name (longest prefix wins)."""
    parts = module.split(".")
    while parts:
        rank = LAYERS.get(".".join(parts))
        if rank is not None:
            return rank
        parts.pop()
    return None


def _imported_modules(node: ast.Import | ast.ImportFrom) -> list[str]:
    if isinstance(node, ast.ImportFrom):
        if node.level:  # relative import; the project uses absolute only
            return []
        return [node.module] if node.module else []
    return [alias.name for alias in node.names]


def _is_type_checking_guard(node: ast.stmt) -> bool:
    if not isinstance(node, ast.If):
        return False
    test = node.test
    return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
        isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
    )


def _walk_imports(
    body: list[ast.stmt], top_level: bool
) -> list[tuple[ast.Import | ast.ImportFrom, bool]]:
    """Yield ``(import node, is module-level)`` pairs, skipping
    ``if TYPE_CHECKING:`` blocks entirely."""
    found: list[tuple[ast.Import | ast.ImportFrom, bool]] = []
    for statement in body:
        if _is_type_checking_guard(statement):
            continue
        if isinstance(statement, (ast.Import, ast.ImportFrom)):
            found.append((statement, top_level))
            continue
        # Imports in functions become deferred; imports inside if/try/
        # with blocks (or class bodies) at module scope stay
        # module-level - they still run at import time.
        in_function = isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
        child_top = top_level and not in_function
        for attr in ("body", "orelse", "finalbody"):
            inner = getattr(statement, attr, None)
            if isinstance(inner, list) and inner and isinstance(inner[0], ast.stmt):
                found.extend(_walk_imports(inner, child_top))
        for handler in getattr(statement, "handlers", []):
            found.extend(_walk_imports(handler.body, child_top))
    return found


def check_layering(modules: list[SourceModule]) -> list[Finding]:
    """Run the layering rules over the collected modules."""
    findings: list[Finding] = []
    for module in modules:
        importer_rank = layer_of(module.name)
        if importer_rank is None:
            continue
        for node, top_level in _walk_imports(module.tree.body, True):
            for target in _imported_modules(node):
                if not target.startswith("repro"):
                    continue
                target_rank = layer_of(target)
                if target_rank is None:
                    continue
                if top_level and target_rank > importer_rank:
                    findings.append(
                        Finding(
                            rule="LAYER001",
                            category="layering",
                            module=module.name,
                            path=str(module.path),
                            line=node.lineno,
                            message=(
                                f"module-level import of {target} (layer "
                                f"{target_rank}) from layer {importer_rank}: "
                                "imports must point downward; defer it or "
                                "move the dependency"
                            ),
                        )
                    )
                elif (
                    target_rank == _SERVICE_RANK
                    and importer_rank < _SERVICE_RANK
                ):
                    findings.append(
                        Finding(
                            rule="LAYER002",
                            category="layering",
                            module=module.name,
                            path=str(module.path),
                            line=node.lineno,
                            message=(
                                f"{module.name} imports {target}: nothing "
                                "below the service layer may depend on it, "
                                "even via a deferred import"
                            ),
                        )
                    )
    return findings
