"""Contract checkers: fault-site drift, exception flow, op vocabularies.

Three rules that keep the distributed tier's *declared* contracts in
sync with the code that implements them:

* **FAULT001/002 - fault-site drift.** :mod:`repro.faults` declares the
  injectable site inventory as a module-level ``SITES`` tuple; every
  instrumented call site invokes ``registry.fire("...")``,
  ``registry.corrupt("...", value)`` or - on the transport sites -
  ``registry.transport("...")`` with a literal from it. A
  registered name with no call site is dead chaos coverage (FAULT001);
  a fired name that was never registered silently never fires
  (FAULT002). If the analyzed tree declares no ``SITES`` inventory the
  rules are vacuous and skipped.

* **EXC001 - non-degradable exception flow.** The resilience tier
  promises that ``LockOrderViolation``, ``BlockingUnderLock``,
  ``RequestTimeout``, ``ServiceUnavailable`` and ``CachePoisonedError``
  always surface: broad handlers must re-raise them (the ladder's
  ``except NON_DEGRADABLE: raise`` pattern). The checker propagates
  per-function *may-raise* sets for those types over the call graph,
  then inspects every ``try`` whose broad (``Exception``/
  ``BaseException``/bare) handler swallows: if a guarded type can
  reach it and no earlier handler disposes of it (naming the type, a
  superclass, or a tuple constant like ``NON_DEGRADABLE`` resolving to
  it), that is EXC001.

* **SCHEMA001 - op vocabulary drift.** WAL records and wire frames
  dispatch on string ops declared once (``OPS`` in
  :mod:`repro.storage.records`, ``REQUEST_OPS`` in
  :mod:`repro.sharding.protocol`). In any module that declares such a
  vocabulary or imports from a declaring module, every op literal -
  ``op == "..."`` comparisons, ``{"op": "..."}`` payloads, and the
  keys of ``*REQUIRED*`` field tables - must be a member of a declared
  vocabulary; the field table must also cover the whole vocabulary.

All three follow the analyzer's house rule: approximate toward zero
false positives on this codebase's idioms, and prove each rule still
fires with a deliberately-broken fixture.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.callgraph import FunctionSummary, Program, _ModuleScope
from repro.analysis.findings import Finding
from repro.analysis.hygiene import _broad_except_label, _reraises

__all__ = [
    "GUARDED_EXCEPTIONS",
    "check_contracts",
    "check_exception_contracts",
    "check_fault_sites",
    "check_schema_vocabulary",
]

#: Exception types that must never be swallowed by a broad handler.
GUARDED_EXCEPTIONS = (
    "LockOrderViolation",
    "BlockingUnderLock",
    "RequestTimeout",
    "ServiceUnavailable",
    "CachePoisonedError",
)

#: Catching one of these names disposes of the guarded types listed.
#: (Subset of the real hierarchy: enough to honor typed handlers.)
_DISPOSES: dict[str, frozenset[str]] = {
    "BaseException": frozenset(GUARDED_EXCEPTIONS),
    "Exception": frozenset(GUARDED_EXCEPTIONS),
    "ReproError": frozenset(GUARDED_EXCEPTIONS),
    "TreeError": frozenset({"CachePoisonedError"}),
    "ServiceUnavailable": frozenset({"ServiceUnavailable", "RequestTimeout"}),
    **{name: frozenset({name}) for name in GUARDED_EXCEPTIONS},
}

_VOCAB_NAME = re.compile(r"^[A-Z_]*OPS$")


# ----------------------------------------------------------------------
# FAULT001/002: fault-site drift
# ----------------------------------------------------------------------
def _string_tuple(node: ast.expr) -> tuple[str, ...] | None:
    """The literal strings of a tuple/list of constants, else ``None``."""
    if not isinstance(node, (ast.Tuple, ast.List)) or not node.elts:
        return None
    values = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        values.append(element.value)
    return tuple(values)


def check_fault_sites(program: Program) -> list[Finding]:
    """Rules FAULT001/FAULT002: registered vs. fired site inventory."""
    declared: list[tuple[_ModuleScope, int, tuple[str, ...]]] = []
    for scope in program.modules.values():
        for statement in scope.source.tree.body:
            if (
                isinstance(statement, ast.Assign)
                and len(statement.targets) == 1
                and isinstance(statement.targets[0], ast.Name)
                and statement.targets[0].id == "SITES"
            ):
                sites = _string_tuple(statement.value)
                if sites is not None:
                    declared.append((scope, statement.lineno, sites))
    if not declared:
        return []
    registered = {site for _, _, sites in declared for site in sites}

    fired: dict[str, list[tuple[_ModuleScope, int]]] = {}
    for scope in program.modules.values():
        for node in ast.walk(scope.source.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in {"fire", "corrupt", "transport"}
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                fired.setdefault(node.args[0].value, []).append((scope, node.lineno))

    findings: list[Finding] = []
    for scope, line, sites in declared:
        for site in sites:
            if site not in fired:
                findings.append(
                    Finding(
                        rule="FAULT001",
                        category="contracts",
                        module=scope.source.name,
                        path=str(scope.source.path),
                        line=line,
                        message=(
                            f"fault site {site!r} is registered in SITES but no "
                            f"fire()/corrupt() call site references it"
                        ),
                    )
                )
    for site, uses in sorted(fired.items()):
        if site in registered:
            continue
        for scope, line in uses:
            findings.append(
                Finding(
                    rule="FAULT002",
                    category="contracts",
                    module=scope.source.name,
                    path=str(scope.source.path),
                    line=line,
                    message=(
                        f"fault site {site!r} is fired here but never registered "
                        f"in the SITES inventory"
                    ),
                )
            )
    return findings


# ----------------------------------------------------------------------
# EXC001: non-degradable exceptions reaching swallowing broad handlers
# ----------------------------------------------------------------------
def _exception_name(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@dataclass(frozen=True)
class _MayRaise:
    """One guarded exception a function may raise, with provenance."""

    name: str
    origin: str  # "display:line" of the raise statement
    chain: tuple[str, ...]


def _direct_raises(program: Program) -> dict[str, dict[str, _MayRaise]]:
    raises: dict[str, dict[str, _MayRaise]] = {}
    for qualname, summary in program.functions.items():
        scope = program.modules[summary.module]
        node = _function_node(scope, summary.display)
        if node is None:
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Raise):
                name = _exception_name(sub.exc)
                if name in GUARDED_EXCEPTIONS:
                    raises.setdefault(qualname, {}).setdefault(
                        name,
                        _MayRaise(
                            name=name,
                            origin=f"{summary.display}:{sub.lineno}",
                            chain=(),
                        ),
                    )
    return raises


def _function_node(
    scope: _ModuleScope, display: str
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    if "." in display:
        class_name, method = display.rsplit(".", 1)
        info = scope.classes.get(class_name)
        return info.methods.get(method) if info is not None else None
    return scope.functions.get(display)


def _may_raise_sets(
    program: Program, extra_edges: tuple[tuple[str, str], ...]
) -> dict[str, dict[str, _MayRaise]]:
    overrides = program.method_overrides()
    extra = {caller: callee for caller, callee in extra_edges}
    may_raise = _direct_raises(program)
    changed = True
    while changed:
        changed = False
        for qualname, summary in program.functions.items():
            bucket = may_raise.setdefault(qualname, {})
            for site in summary.calls:
                callees = [site.callee] if site.callee else []
                if not callees and qualname in extra:
                    callees = [extra[qualname]]
                for callee in list(callees):
                    callees.extend(overrides.get(callee, ()))
                for callee in callees:
                    for entry in may_raise.get(callee, {}).values():
                        if entry.name in bucket:
                            continue
                        display = (
                            program.functions[callee].display
                            if callee in program.functions
                            else callee
                        )
                        bucket[entry.name] = _MayRaise(
                            name=entry.name,
                            origin=entry.origin,
                            chain=(display, *entry.chain),
                        )
                        changed = True
    return may_raise


def _handler_disposals(
    scope: _ModuleScope, program: Program, handler: ast.ExceptHandler
) -> frozenset[str]:
    """Guarded types an ``except <type>:`` handler disposes of."""
    names: list[str] = []
    node = handler.type
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    for element in elements:
        if element is None:
            continue
        name = _exception_name(element)
        if name is None:
            continue
        resolved = _resolve_exception_tuple(scope, program, element, name)
        if resolved is not None:
            names.extend(resolved)
        else:
            names.append(name)
    disposed: set[str] = set()
    for name in names:
        disposed.update(_DISPOSES.get(name, frozenset()))
    return frozenset(disposed)


def _resolve_exception_tuple(
    scope: _ModuleScope, program: Program, node: ast.expr, name: str
) -> list[str] | None:
    """Resolve ``except NON_DEGRADABLE`` style tuple constants."""
    if not isinstance(node, ast.Name) or name in _DISPOSES:
        return None
    defining = scope
    target_name = name
    imported = scope.imports.get(name)
    if imported is not None:
        module, target_name = imported
        maybe = program.modules.get(module)
        if maybe is None:
            return None
        defining = maybe
    for statement in defining.source.tree.body:
        if (
            isinstance(statement, ast.Assign)
            and len(statement.targets) == 1
            and isinstance(statement.targets[0], ast.Name)
            and statement.targets[0].id == target_name
            and isinstance(statement.value, (ast.Tuple, ast.List))
        ):
            members = []
            for element in statement.value.elts:
                member = _exception_name(element)
                if member is not None:
                    members.append(member)
            return members
    return None


def check_exception_contracts(
    program: Program, extra_edges: tuple[tuple[str, str], ...] = ()
) -> list[Finding]:
    """Rule EXC001: guarded exceptions swallowed by broad handlers."""
    may_raise = _may_raise_sets(program, extra_edges)
    findings: list[Finding] = []
    for qualname, summary in program.functions.items():
        scope = program.modules[summary.module]
        node = _function_node(scope, summary.display)
        if node is None:
            continue
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Try):
                continue
            disposed: set[str] = set()
            for handler in sub.handlers:
                label = _broad_except_label(handler)
                if label is None:
                    disposed.update(_handler_disposals(scope, program, handler))
                    continue
                if _reraises(handler):
                    disposed.update(GUARDED_EXCEPTIONS)
                    continue
                reachable = _guarded_in_region(summary, may_raise, sub.body)
                escaped = {
                    name: entry
                    for name, entry in reachable.items()
                    if name not in disposed
                }
                for name, entry in sorted(escaped.items()):
                    findings.append(
                        Finding(
                            rule="EXC001",
                            category="contracts",
                            module=summary.module,
                            path=summary.path,
                            line=handler.lineno,
                            message=(
                                f"broad handler ({label}) in {summary.display} "
                                f"swallows non-degradable {name} raised at "
                                f"{entry.origin}; re-raise it (the ladder's "
                                f"'except NON_DEGRADABLE: raise' pattern)"
                            ),
                            function=summary.display,
                            chain=entry.chain,
                        )
                    )
                disposed.update(GUARDED_EXCEPTIONS)
    return findings


def _guarded_in_region(
    summary: FunctionSummary,
    may_raise: dict[str, dict[str, _MayRaise]],
    body: list[ast.stmt],
) -> dict[str, _MayRaise]:
    """Guarded exceptions reachable from a ``try`` body's region."""
    start = body[0].lineno
    end = max(getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno for stmt in body)
    reachable: dict[str, _MayRaise] = {}
    # Direct raises inside the region.
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Raise):
                name = _exception_name(sub.exc)
                if name in GUARDED_EXCEPTIONS:
                    reachable.setdefault(
                        name,
                        _MayRaise(name=name, origin=f"raise:{sub.lineno}", chain=()),
                    )
    # Calls recorded by the function scanner whose line falls inside.
    for site in summary.calls:
        if site.callee is None or not (start <= site.line <= end):
            continue
        for entry in may_raise.get(site.callee, {}).values():
            if entry.name not in reachable:
                display = site.callee.rsplit(":", 1)[-1]
                reachable[entry.name] = _MayRaise(
                    name=entry.name,
                    origin=entry.origin,
                    chain=(display, *entry.chain),
                )
    return reachable


# ----------------------------------------------------------------------
# SCHEMA001: op literals outside the declared vocabulary
# ----------------------------------------------------------------------
def _declared_vocabularies(
    program: Program,
) -> dict[str, tuple[str, tuple[str, ...]]]:
    """``module -> (vocab name, members)`` for ``*OPS`` tuple constants."""
    vocabularies: dict[str, tuple[str, tuple[str, ...]]] = {}
    for scope in program.modules.values():
        for statement in scope.source.tree.body:
            if (
                isinstance(statement, ast.Assign)
                and len(statement.targets) == 1
                and isinstance(statement.targets[0], ast.Name)
                and _VOCAB_NAME.match(statement.targets[0].id)
            ):
                members = _string_tuple(statement.value)
                if members is not None:
                    vocabularies[scope.source.name] = (
                        statement.targets[0].id,
                        members,
                    )
    return vocabularies


def _is_op_expr(node: ast.expr) -> bool:
    """Whether an expression denotes a record/frame op value."""
    if isinstance(node, ast.Name):
        return node.id == "op" or node.id.endswith("_op")
    if isinstance(node, ast.Attribute):
        return node.attr == "op" or node.attr.endswith("_op")
    if isinstance(node, ast.Subscript):
        key = node.slice
        return (
            isinstance(key, ast.Constant)
            and key.value == "op"
        )
    if isinstance(node, ast.Call):
        func = node.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr == "get"
            and bool(node.args)
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == "op"
        )
    return False


def check_schema_vocabulary(program: Program) -> list[Finding]:
    """Rule SCHEMA001: op string literals must derive from a vocabulary."""
    vocabularies = _declared_vocabularies(program)
    if not vocabularies:
        return []
    union: set[str] = set()
    for _, members in vocabularies.values():
        union.update(members)

    findings: list[Finding] = []

    def _emit(scope: _ModuleScope, line: int, message: str) -> None:
        findings.append(
            Finding(
                rule="SCHEMA001",
                category="contracts",
                module=scope.source.name,
                path=str(scope.source.path),
                line=line,
                message=message,
            )
        )

    for scope in program.modules.values():
        in_scope = scope.source.name in vocabularies or any(
            module in vocabularies for module, _ in scope.imports.values()
        )
        if not in_scope:
            continue
        tree = scope.source.tree
        for node in ast.walk(tree):
            if isinstance(node, ast.Compare):
                sides = [node.left, *node.comparators]
                if not any(_is_op_expr(side) for side in sides):
                    continue
                for side in sides:
                    if (
                        isinstance(side, ast.Constant)
                        and isinstance(side.value, str)
                        and side.value not in union
                    ):
                        _emit(
                            scope,
                            side.lineno,
                            f"op literal {side.value!r} is not in any declared "
                            f"vocabulary ({sorted(union)})",
                        )
            elif isinstance(node, ast.Dict):
                for key, value in zip(node.keys, node.values):
                    if (
                        isinstance(key, ast.Constant)
                        and key.value == "op"
                        and isinstance(value, ast.Constant)
                        and isinstance(value.value, str)
                        and value.value not in union
                    ):
                        _emit(
                            scope,
                            value.lineno,
                            f"op payload value {value.value!r} is not in any "
                            f"declared vocabulary ({sorted(union)})",
                        )
        # Field tables: module-level *REQUIRED* dicts keyed by op.
        declared_here = vocabularies.get(scope.source.name)
        for statement in tree.body:
            if not (
                isinstance(statement, ast.Assign)
                and len(statement.targets) == 1
                and isinstance(statement.targets[0], ast.Name)
                and "REQUIRED" in statement.targets[0].id
                and isinstance(statement.value, ast.Dict)
            ):
                continue
            table = statement.targets[0].id
            keys = [
                key.value
                for key in statement.value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            ]
            for key in keys:
                if key not in union:
                    _emit(
                        scope,
                        statement.lineno,
                        f"{table} lists op {key!r} which is not in any "
                        f"declared vocabulary ({sorted(union)})",
                    )
            if declared_here is not None:
                name, members = declared_here
                missing = [op for op in members if op not in keys]
                if missing and keys:
                    _emit(
                        scope,
                        statement.lineno,
                        f"{table} is missing ops {missing} declared in {name}",
                    )
    return findings


def check_contracts(
    program: Program, extra_edges: tuple[tuple[str, str], ...] = ()
) -> list[Finding]:
    """All contract rules: FAULT001/002, EXC001, SCHEMA001."""
    findings = check_fault_sites(program)
    findings.extend(check_exception_contracts(program, extra_edges))
    findings.extend(check_schema_vocabulary(program))
    return findings
