"""Rule BLOCK001: may-block effect inference over the call graph.

A *may-block* effect is a call that can park the calling thread on
something other than a ranked lock: socket I/O (``send``/``recv``/
``accept``/``connect``), file barriers (``flush``/``os.fsync``),
process/thread joins, ``time.sleep``, ``Future.result`` and condition
waits. Holding a ranked in-memory lock across one of these stalls
every thread queued behind it - the distributed tier's classic
tail-latency (and, with the WAL, deadlock) recipe.

The checker computes a fixed-point effect set per function, exactly
like :mod:`repro.analysis.lockorder` computes transitive acquires:

1. **Direct effects**: classify every call site syntactically (see
   ``_classify``). The table is deliberately conservative - ``.join``
   only with zero positional arguments (so ``", ".join(...)`` never
   matches), no ``.get``/``.acquire`` (queue waits are approximated by
   the primitives above; dict/semaphore noise would drown the signal).
2. **Shielding**: three hierarchy levels exist to guard I/O -
   ``SANCTIONED_BLOCKING_LEVELS`` (router/conn/store), shared with the
   runtime sanitizer in :mod:`repro.concurrency.blocking`. At any
   call site the *innermost ranked* held lock decides: sanctioned
   level -> the blocking is anchored at its designed boundary and the
   effect stops propagating; non-sanctioned level -> ``BLOCK001``;
   no ranked lock held -> the effect propagates to the caller with a
   provenance chain.
3. **Dispatch**: resolved callees plus the lock checker's configured
   dynamic-dispatch edges, widened through subclass overrides so
   ``ProfileStore._append_records`` carries the jsonl/sqlite fsync
   effects to the abstract call site (where the store mutex shields
   them).

:mod:`repro.faults` is exempt as an effect *source*: its injected
latency blocks under the instrumented caller's locks by design, and
mirrors this at runtime via ``allow_blocking()``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.concurrency.blocking import SANCTIONED_BLOCKING_LEVELS
from repro.analysis.callgraph import Acquire, CallSite, Program, level_name
from repro.analysis.findings import Finding

__all__ = ["BLOCKING_EXEMPT_MODULES", "check_blocking"]

#: Modules whose blocking is the point (fault injection): never an
#: effect source. The runtime twin is ``allow_blocking()``.
BLOCKING_EXEMPT_MODULES = ("repro.faults",)

#: Attribute calls that may block, ``attr -> effect kind``.
_BLOCKING_ATTRS = {
    "send": "socket send",
    "sendall": "socket send",
    "sendto": "socket send",
    "recv": "socket recv",
    "recv_into": "socket recv",
    "recvfrom": "socket recv",
    "accept": "socket accept",
    "connect": "socket connect",
    "flush": "flush",
    "fsync": "fsync",
    "result": "future wait",
    "wait": "wait",
    "wait_for": "wait",
}

#: Module-qualified functions that may block (``module.name`` form).
_BLOCKING_QUALIFIED = {
    ("time", "sleep"): "sleep",
    ("os", "fsync"): "fsync",
    ("socket", "create_connection"): "socket connect",
    ("subprocess", "Popen"): "process spawn",
    ("subprocess", "check_call"): "process wait",
    ("subprocess", "check_output"): "process wait",
}


@dataclass(frozen=True)
class _MayBlock:
    """One may-block effect with its provenance chain (innermost last)."""

    kind: str  # "sleep", "fsync", "socket recv", ...
    origin: str  # "module:display:line" of the primitive call
    chain: tuple[str, ...]  # display names, caller-side first


def _classify(node: ast.Call | None, scope_imports: dict[str, tuple[str, str]]) -> str | None:
    """The effect kind of a call, or ``None`` if it cannot block."""
    if node is None:
        return None
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr == "join":
            # Thread/process join takes no positional argument;
            # ``sep.join(parts)`` takes exactly one.
            return None if node.args else "join"
        kind = _BLOCKING_ATTRS.get(func.attr)
        if kind is not None:
            return kind
        if isinstance(func.value, ast.Name):
            return _BLOCKING_QUALIFIED.get((func.value.id, func.attr))
        return None
    if isinstance(func, ast.Name):
        target = scope_imports.get(func.id)
        if target is not None:
            module, name = target
            return _BLOCKING_QUALIFIED.get((module, name))
        if func.id == "Popen":
            return "process spawn"
    return None


def _innermost_ranked(held: tuple[Acquire, ...]) -> Acquire | None:
    ranked = [entry for entry in held if entry.lock.level is not None]
    if not ranked:
        return None
    return max(ranked, key=lambda entry: entry.lock.level or 0)


def _callees(site: CallSite, overrides: dict[str, tuple[str, ...]]) -> tuple[str, ...]:
    if site.callee is None:
        return ()
    return (site.callee, *overrides.get(site.callee, ()))


def check_blocking(
    program: Program,
    extra_edges: tuple[tuple[str, str], ...] = (),
) -> list[Finding]:
    """Rule BLOCK001: may-block effects reachable under a ranked lock."""
    overrides = program.method_overrides()
    extra = {caller: callee for caller, callee in extra_edges}

    # Direct effects per function, split by whether a ranked lock is
    # held at the primitive itself.
    direct_free: dict[str, list[_MayBlock]] = {}
    direct_held: dict[str, list[tuple[_MayBlock, Acquire]]] = {}
    for qualname, summary in program.functions.items():
        if summary.module.startswith(BLOCKING_EXEMPT_MODULES):
            continue
        scope = program.modules[summary.module]
        for site in summary.calls:
            kind = _classify(site.node, scope.imports)
            if kind is None:
                continue
            effect = _MayBlock(
                kind=kind,
                origin=f"{summary.display}:{site.line}",
                chain=(),
            )
            innermost = _innermost_ranked(site.held)
            if innermost is None:
                direct_free.setdefault(qualname, []).append(effect)
            else:
                direct_held.setdefault(qualname, []).append((effect, innermost))

    # Fixed point: exported effects = direct lock-free effects plus the
    # exported effects of callees invoked with no ranked lock held.
    exported: dict[str, dict[tuple[str, str], _MayBlock]] = {
        qualname: {(e.kind, e.origin): e for e in effects}
        for qualname, effects in direct_free.items()
    }
    changed = True
    while changed:
        changed = False
        for qualname, summary in program.functions.items():
            if summary.module.startswith(BLOCKING_EXEMPT_MODULES):
                continue
            bucket = exported.setdefault(qualname, {})
            for site in summary.calls:
                if _innermost_ranked(site.held) is not None:
                    continue  # anchored below: finding or shielded
                callees = _callees(site, overrides)
                if not callees and site.callee is None and qualname in extra:
                    callees = (extra[qualname],)
                for callee in callees:
                    for effect in exported.get(callee, {}).values():
                        display = program.functions[callee].display if callee in program.functions else callee
                        lifted = _MayBlock(
                            kind=effect.kind,
                            origin=effect.origin,
                            chain=(display, *effect.chain),
                        )
                        key = (lifted.kind, lifted.origin)
                        if key not in bucket:
                            bucket[key] = lifted
                            changed = True
    findings: list[Finding] = []

    def _emit(
        summary_qualname: str,
        line: int,
        effect: _MayBlock,
        innermost: Acquire,
        via: tuple[str, ...],
    ) -> None:
        summary = program.functions[summary_qualname]
        findings.append(
            Finding(
                rule="BLOCK001",
                category="effects",
                module=summary.module,
                path=summary.path,
                line=line,
                message=(
                    f"{summary.display} may block ({effect.kind} at "
                    f"{effect.origin}) while holding "
                    f"{innermost.lock.key} [{level_name(innermost.lock.level)}]; "
                    f"only sanctioned levels "
                    f"{sorted(SANCTIONED_BLOCKING_LEVELS)} may block"
                ),
                function=summary.display,
                chain=via,
            )
        )

    for qualname, entries in direct_held.items():
        for effect, innermost in entries:
            if innermost.lock.level in SANCTIONED_BLOCKING_LEVELS:
                continue  # the designed blocking boundary
            line = int(effect.origin.rsplit(":", 1)[-1])
            _emit(qualname, line, effect, innermost, ())

    for qualname, summary in program.functions.items():
        if summary.module.startswith(BLOCKING_EXEMPT_MODULES):
            continue
        for site in summary.calls:
            innermost = _innermost_ranked(site.held)
            if innermost is None or innermost.lock.level in SANCTIONED_BLOCKING_LEVELS:
                continue
            callees = _callees(site, overrides)
            if not callees and site.callee is None and qualname in extra:
                callees = (extra[qualname],)
            for callee in callees:
                for effect in exported.get(callee, {}).values():
                    display = (
                        program.functions[callee].display
                        if callee in program.functions
                        else callee
                    )
                    _emit(
                        qualname,
                        site.line,
                        effect,
                        innermost,
                        (display, *effect.chain),
                    )
    unique: dict[tuple[str, str, int, str], Finding] = {}
    for finding in findings:
        unique.setdefault((finding.rule, finding.path, finding.line, finding.message), finding)
    return list(unique.values())
