"""Source collection: parse a package tree into named ASTs."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ReproError

__all__ = ["SourceModule", "collect_modules", "load_module"]


@dataclass
class SourceModule:
    """One parsed source file with its dotted module name."""

    name: str
    path: Path
    tree: ast.Module = field(repr=False)
    lines: tuple[str, ...] = field(default=(), repr=False)  # for suppressions

    @property
    def package(self) -> str:
        """The first package segment below ``repro`` (or ``""``)."""
        parts = self.name.split(".")
        return parts[1] if len(parts) > 2 else ""


def load_module(name: str, path: Path) -> SourceModule:
    """Parse one file under an explicit dotted module name.

    Tests use this to feed deliberately-broken fixture files to the
    checkers under pretend ``repro.*`` names, so every rule has a
    failing-case exercise without shipping broken code in ``src/``.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as error:
        raise ReproError(f"cannot parse {path}: {error}") from error
    return SourceModule(name=name, path=path, tree=tree, lines=tuple(text.splitlines()))


def collect_modules(root: Path, package: str = "repro") -> list[SourceModule]:
    """Every ``*.py`` under ``root``, named relative to ``package``.

    ``root`` is the directory of the package itself (the directory
    containing its ``__init__.py``); ``root/db/relation.py`` becomes
    ``repro.db.relation``.
    """
    root = Path(root)
    if not root.is_dir():
        raise ReproError(f"analysis root {root} is not a directory")
    modules = []
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        relative = path.relative_to(root)
        parts = list(relative.parts)
        parts[-1] = parts[-1][: -len(".py")]
        if parts[-1] == "__init__":
            parts.pop()
        name = ".".join([package, *parts]) if parts else package
        modules.append(load_module(name, path))
    return modules
