"""Lock-order checker: the hierarchy, proved over the call graph.

The process lock order (see :mod:`repro.concurrency` and
``docs/architecture.md``) is: user(10) < registry(20) < account(25) <
relation(30) < cache(40) < metrics(50) - a thread must acquire locks
in strictly increasing level order, and an :class:`~repro.concurrency.RWLock`
held on the read side must never be upgraded to the write side.

The runtime sanitizer (:func:`repro.concurrency.enable_lock_sanitizer`)
asserts this on the paths the tests happen to execute; this checker
asserts it on *every* path the sources can express:

1. :class:`~repro.analysis.callgraph.Program` extracts each function's
   direct acquisitions with the locks lexically held around them, and
   its call sites likewise.
2. A fixed-point pass computes each function's **transitive acquire
   set** - every ``(lock, mode)`` it may acquire directly or through
   callees - with a provenance chain for messages.
3. Every direct acquisition and every resolved call site is then
   checked against the locks held there.

Rules:

* ``LOCK001`` - while holding a ranked lock, a path acquires a
  *different* lock of equal or lower level (the same lock re-entering
  is fine; the primitives are reentrant).
* ``LOCK002`` - while holding a lock's read side, a path acquires its
  write side (an RWLock cannot upgrade; this self-deadlocks under a
  waiting writer).

Listener dispatch is the one dynamic edge the call graph cannot see:
``Relation.insert`` invokes registered callbacks under its write lock.
``EXTRA_CALL_EDGES`` declares those callee pairs; each is anchored at
the caller's *unresolved* call sites (the ``listener(self)`` dispatch
itself), so the callback is checked against exactly the locks held at
dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.callgraph import Acquire, LockRef, Program, level_name
from repro.analysis.findings import Finding
from repro.analysis.modules import SourceModule

__all__ = ["EXTRA_CALL_EDGES", "check_lock_order"]

#: Dynamic-dispatch edges the static call graph cannot resolve:
#: ``(caller qualname, callee qualname)``. Relation mutation listeners
#: are registered by ContextQueryTree.watch and invoked - under the
#: relation's write lock - from Relation.insert.
EXTRA_CALL_EDGES: tuple[tuple[str, str], ...] = (
    (
        "repro.db.relation:Relation.insert",
        "repro.tree.query_tree:ContextQueryTree._on_relation_mutated",
    ),
)


@dataclass(frozen=True)
class _MayAcquire:
    """One (lock, mode) a function may acquire, with provenance."""

    lock: LockRef
    mode: str
    chain: tuple[str, ...]  # callee display names, outermost first


def _innermost(held: tuple[Acquire, ...]) -> Acquire | None:
    """The highest-level ranked lock currently held (runtime's rule)."""
    ranked = [acquire for acquire in held if acquire.lock.level is not None]
    return max(ranked, key=lambda acquire: acquire.lock.level) if ranked else None


def _transitive_acquires(
    program: Program, extra_edges: tuple[tuple[str, str], ...]
) -> dict[str, dict[tuple[str, str], _MayAcquire]]:
    """Fixed point of "may acquire" over the call graph."""
    extra_by_caller: dict[str, list[str]] = {}
    for caller, callee in extra_edges:
        if caller in program.functions and callee in program.functions:
            extra_by_caller.setdefault(caller, []).append(callee)

    summary: dict[str, dict[tuple[str, str], _MayAcquire]] = {
        name: {
            (acquire.lock.key, acquire.mode): _MayAcquire(
                lock=acquire.lock, mode=acquire.mode, chain=()
            )
            for acquire, _held in function.acquires
        }
        for name, function in program.functions.items()
    }
    changed = True
    while changed:
        changed = False
        for name, function in program.functions.items():
            mine = summary[name]
            callees = [
                call.callee
                for call in function.calls
                if call.callee is not None and call.callee in summary
            ]
            callees.extend(extra_by_caller.get(name, []))
            for callee in callees:
                callee_display = program.functions[callee].display
                for key, entry in summary[callee].items():
                    if key not in mine:
                        mine[key] = _MayAcquire(
                            lock=entry.lock,
                            mode=entry.mode,
                            chain=(callee_display, *entry.chain),
                        )
                        changed = True
    return summary


def _order_violation(
    held: tuple[Acquire, ...], lock: LockRef, mode: str
) -> tuple[str, Acquire] | None:
    """The violated rule (and the held lock it clashes with), if any."""
    for acquire in held:
        if acquire.lock.key == lock.key:
            if acquire.mode == "read" and mode == "write":
                return ("LOCK002", acquire)
            return None  # reentrant re-acquire of the same lock: fine
    if lock.level is None:
        return None  # unranked locks opt out of the hierarchy
    innermost = _innermost(held)
    if innermost is not None and lock.level <= innermost.lock.level:
        return ("LOCK001", innermost)
    return None


def _describe(lock: LockRef, mode: str) -> str:
    side = {"read": " (read side)", "write": " (write side)"}.get(mode, "")
    return f"{lock.key}{side} at level {level_name(lock.level)}"


def check_lock_order(
    modules: list[SourceModule],
    extra_edges: tuple[tuple[str, str], ...] = EXTRA_CALL_EDGES,
) -> list[Finding]:
    """Run the lock-order rules over the collected modules."""
    program = Program(modules)
    transitive = _transitive_acquires(program, extra_edges)
    findings: list[Finding] = []

    def report(
        rule: str,
        function_name: str,
        line: int,
        lock: LockRef,
        mode: str,
        clash: Acquire,
        chain: tuple[str, ...],
    ) -> None:
        function = program.functions[function_name]
        via = f" via {' -> '.join(chain)}" if chain else ""
        if rule == "LOCK002":
            message = (
                f"read->write upgrade: holding {clash.lock.key} (read side), "
                f"this path{via} acquires its write side; an RWLock cannot "
                "upgrade - release the read side first"
            )
        else:
            message = (
                f"lock-order inversion: holding {_describe(clash.lock, clash.mode)}, "
                f"this path{via} acquires {_describe(lock, mode)}; locks must "
                "be taken in strictly increasing level order"
            )
        findings.append(
            Finding(
                rule=rule,
                category="lock-order",
                module=function.module,
                path=function.path,
                line=line,
                message=message,
                function=function.display,
            )
        )

    for name, function in program.functions.items():
        for acquire, held in function.acquires:
            violated = _order_violation(held, acquire.lock, acquire.mode)
            if violated is not None:
                rule, clash = violated
                report(rule, name, acquire.line, acquire.lock, acquire.mode, clash, ())
        extra_callees = [
            callee
            for caller, callee in extra_edges
            if caller == name and callee in transitive
        ]
        for call in function.calls:
            if not call.held:
                continue
            callees: list[str] = []
            if call.callee is not None and call.callee in transitive:
                callees.append(call.callee)
            elif call.callee is None:
                # Unresolved call sites anchor the dynamic-dispatch
                # edges: the listener callback runs right here.
                callees.extend(extra_callees)
            for callee in callees:
                for entry in transitive[callee].values():
                    violated = _order_violation(call.held, entry.lock, entry.mode)
                    if violated is not None:
                        rule, clash = violated
                        report(
                            rule,
                            name,
                            call.line,
                            entry.lock,
                            entry.mode,
                            clash,
                            (program.functions[callee].display, *entry.chain),
                        )
    return findings
