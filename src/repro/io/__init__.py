"""Serialisation: model objects to dicts/JSON, relations to CSV."""

from repro.io.csvio import read_csv, relation_from_csv, relation_to_csv, write_csv
from repro.io.serialize import (
    descriptor_from_dict,
    descriptor_to_dict,
    dumps,
    environment_from_dict,
    environment_to_dict,
    hierarchy_from_dict,
    hierarchy_to_dict,
    loads,
    preference_from_dict,
    preference_to_dict,
    profile_from_dict,
    profile_to_dict,
)

__all__ = [
    "descriptor_from_dict",
    "descriptor_to_dict",
    "dumps",
    "environment_from_dict",
    "environment_to_dict",
    "hierarchy_from_dict",
    "hierarchy_to_dict",
    "loads",
    "preference_from_dict",
    "preference_to_dict",
    "profile_from_dict",
    "profile_to_dict",
    "read_csv",
    "relation_from_csv",
    "relation_to_csv",
    "write_csv",
]
