"""JSON-friendly (de)serialisation of the context/preference model.

Profiles outlive processes: the paper's system stores user profiles in
the database. This module round-trips every model object through plain
dicts (and therefore JSON): hierarchies, context parameters and
environments, descriptors, preferences and whole profiles.

The dict formats are versioned with a ``"kind"`` tag so files are
self-describing; ``loads``/``dumps`` wrap the dict codecs with
``json``.
"""

from __future__ import annotations

import json
from collections.abc import Mapping

from repro.exceptions import ReproError
from repro.context.descriptor import (
    ContextDescriptor,
    ExtendedContextDescriptor,
    ParameterDescriptor,
)
from repro.context.environment import ContextEnvironment
from repro.context.parameter import ContextParameter
from repro.hierarchy import ALL_LEVEL, Hierarchy
from repro.preferences.preference import AttributeClause, ContextualPreference
from repro.preferences.profile import Profile

__all__ = [
    "hierarchy_to_dict",
    "hierarchy_from_dict",
    "environment_to_dict",
    "environment_from_dict",
    "descriptor_to_dict",
    "descriptor_from_dict",
    "preference_to_dict",
    "preference_from_dict",
    "profile_to_dict",
    "profile_from_dict",
    "dumps",
    "loads",
]


def _expect(data: Mapping, kind: str) -> None:
    found = data.get("kind")
    if found != kind:
        raise ReproError(f"expected serialized {kind!r}, found {found!r}")


# ----------------------------------------------------------------------
# Hierarchies / parameters / environments
# ----------------------------------------------------------------------
def hierarchy_to_dict(hierarchy: Hierarchy) -> dict:
    """Serialise a hierarchy: levels, members and parent links."""
    levels = [level.name for level in hierarchy.levels if level.name != ALL_LEVEL]
    members = {name: list(hierarchy.domain(name)) for name in levels}
    parent_of = {}
    for name in levels[:-1] if len(levels) > 1 else []:
        for value in hierarchy.domain(name):
            parent_of[value] = hierarchy.parent(value)
    return {
        "kind": "hierarchy",
        "name": hierarchy.name,
        "levels": levels,
        "members": members,
        "parent_of": parent_of,
    }


def hierarchy_from_dict(data: Mapping) -> Hierarchy:
    """Rebuild a hierarchy serialised by :func:`hierarchy_to_dict`."""
    _expect(data, "hierarchy")
    return Hierarchy(
        data["name"],
        levels=data["levels"],
        members=data["members"],
        parent_of=data.get("parent_of") or {},
    )


def environment_to_dict(environment: ContextEnvironment) -> dict:
    """Serialise an environment as its named parameters."""
    return {
        "kind": "environment",
        "parameters": [
            {
                "name": parameter.name,
                "hierarchy": hierarchy_to_dict(parameter.hierarchy),
            }
            for parameter in environment
        ],
    }


def environment_from_dict(data: Mapping) -> ContextEnvironment:
    """Rebuild an environment serialised by :func:`environment_to_dict`."""
    _expect(data, "environment")
    return ContextEnvironment(
        [
            ContextParameter(
                hierarchy_from_dict(entry["hierarchy"]), name=entry["name"]
            )
            for entry in data["parameters"]
        ]
    )


# ----------------------------------------------------------------------
# Descriptors
# ----------------------------------------------------------------------
def _parameter_descriptor_to_dict(descriptor: ParameterDescriptor) -> dict:
    return {
        "parameter": descriptor.parameter_name,
        "op": descriptor.kind,
        "values": list(descriptor.payload),
    }


def _parameter_descriptor_from_dict(data: Mapping) -> ParameterDescriptor:
    op = data["op"]
    values = data["values"]
    name = data["parameter"]
    if op == "equals":
        return ParameterDescriptor.equals(name, values[0])
    if op == "one_of":
        return ParameterDescriptor.one_of(name, values)
    if op == "between":
        return ParameterDescriptor.between(name, values[0], values[1])
    raise ReproError(f"unknown parameter-descriptor op {op!r}")


def descriptor_to_dict(
    descriptor: ContextDescriptor | ExtendedContextDescriptor,
) -> dict:
    """Serialise a composite or extended (DNF) context descriptor."""
    if isinstance(descriptor, ExtendedContextDescriptor):
        return {
            "kind": "extended_descriptor",
            "disjuncts": [descriptor_to_dict(d) for d in descriptor.disjuncts],
        }
    return {
        "kind": "descriptor",
        "conditions": [
            _parameter_descriptor_to_dict(d) for d in descriptor.descriptors
        ],
    }


def descriptor_from_dict(data: Mapping) -> ContextDescriptor | ExtendedContextDescriptor:
    """Rebuild a descriptor serialised by :func:`descriptor_to_dict`."""
    kind = data.get("kind")
    if kind == "extended_descriptor":
        return ExtendedContextDescriptor(
            [descriptor_from_dict(d) for d in data["disjuncts"]]
        )
    _expect(data, "descriptor")
    return ContextDescriptor(
        [_parameter_descriptor_from_dict(d) for d in data["conditions"]]
    )


# ----------------------------------------------------------------------
# Preferences / profiles
# ----------------------------------------------------------------------
def preference_to_dict(preference: ContextualPreference) -> dict:
    """Serialise one contextual preference."""
    return {
        "kind": "preference",
        "descriptor": descriptor_to_dict(preference.descriptor),
        "clause": {
            "attribute": preference.clause.attribute,
            "op": preference.clause.op,
            "value": preference.clause.value,
        },
        "score": preference.score,
    }


def preference_from_dict(data: Mapping) -> ContextualPreference:
    """Rebuild a preference serialised by :func:`preference_to_dict`."""
    _expect(data, "preference")
    descriptor = descriptor_from_dict(data["descriptor"])
    if isinstance(descriptor, ExtendedContextDescriptor):
        raise ReproError("a preference descriptor cannot be extended (DNF)")
    clause = data["clause"]
    return ContextualPreference(
        descriptor,
        AttributeClause(clause["attribute"], clause["value"], clause.get("op", "=")),
        data["score"],
    )


def profile_to_dict(profile: Profile) -> dict:
    """Serialise a whole profile, environment included."""
    return {
        "kind": "profile",
        "environment": environment_to_dict(profile.environment),
        "preferences": [
            preference_to_dict(preference) for preference in profile
        ],
    }


def profile_from_dict(data: Mapping) -> Profile:
    """Rebuild a profile serialised by :func:`profile_to_dict`.

    Conflicting preferences in the payload raise
    :class:`~repro.exceptions.ConflictError`, exactly as interactive
    insertion would.
    """
    _expect(data, "profile")
    environment = environment_from_dict(data["environment"])
    return Profile(
        environment,
        (preference_from_dict(entry) for entry in data["preferences"]),
    )


# ----------------------------------------------------------------------
# JSON convenience wrappers
# ----------------------------------------------------------------------
_TO_DICT = {
    Hierarchy: hierarchy_to_dict,
    ContextEnvironment: environment_to_dict,
    ContextDescriptor: descriptor_to_dict,
    ExtendedContextDescriptor: descriptor_to_dict,
    ContextualPreference: preference_to_dict,
    Profile: profile_to_dict,
}

_FROM_DICT = {
    "hierarchy": hierarchy_from_dict,
    "environment": environment_from_dict,
    "descriptor": descriptor_from_dict,
    "extended_descriptor": descriptor_from_dict,
    "preference": preference_from_dict,
    "profile": profile_from_dict,
}


def dumps(obj: object, **json_kwargs) -> str:
    """Serialise any supported model object to a JSON string."""
    for cls, encode in _TO_DICT.items():
        if isinstance(obj, cls):
            return json.dumps(encode(obj), **json_kwargs)
    raise ReproError(f"cannot serialise objects of type {type(obj).__name__}")


def loads(text: str):
    """Rebuild a model object from a JSON string produced by :func:`dumps`."""
    data = json.loads(text)
    if not isinstance(data, dict) or "kind" not in data:
        raise ReproError("not a serialized repro object (missing 'kind')")
    decode = _FROM_DICT.get(data["kind"])
    if decode is None:
        raise ReproError(f"unknown serialized kind {data['kind']!r}")
    return decode(data)
