"""CSV import/export for relations.

Real deployments feed the Points_of_Interest relation from flat files;
this module writes a :class:`Relation` to CSV and reads one back
against a declared schema, converting each column to its attribute
type (CSV is stringly-typed).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.exceptions import SchemaError
from repro.db.relation import Relation
from repro.db.schema import Schema

__all__ = ["relation_to_csv", "relation_from_csv", "write_csv", "read_csv"]

_TRUE_WORDS = frozenset({"true", "1", "yes", "t"})
_FALSE_WORDS = frozenset({"false", "0", "no", "f"})


def _parse(value: str, type_name: str, nullable: bool) -> object:
    if value == "" and nullable:
        return None
    try:
        if type_name == "int":
            return int(value)
        if type_name == "float":
            return float(value)
        if type_name == "bool":
            lowered = value.strip().lower()
            if lowered in _TRUE_WORDS:
                return True
            if lowered in _FALSE_WORDS:
                return False
            raise ValueError(value)
        return value
    except ValueError as error:
        raise SchemaError(
            f"cannot parse {value!r} as {type_name}"
        ) from error


def relation_to_csv(relation: Relation) -> str:
    """Render a relation as a CSV string (header row included)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(relation.schema.names)
    for row in relation:
        writer.writerow(["" if row[name] is None else row[name]
                         for name in relation.schema.names])
    return buffer.getvalue()


def relation_from_csv(text: str, name: str, schema: Schema) -> Relation:
    """Parse a CSV string into a validated relation.

    The header must contain exactly the schema's attributes (any column
    order); every value is converted to its attribute's type.

    Raises:
        SchemaError: On header/type mismatches.
    """
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise SchemaError("CSV input is empty (no header row)") from None
    if sorted(header) != sorted(schema.names):
        raise SchemaError(
            f"CSV header {header} does not match schema attributes "
            f"{list(schema.names)}"
        )
    relation = Relation(name, schema)
    for line_number, record in enumerate(reader, start=2):
        if not record:
            continue
        if len(record) != len(header):
            raise SchemaError(
                f"CSV line {line_number} has {len(record)} fields, "
                f"expected {len(header)}"
            )
        row = {}
        for column, value in zip(header, record):
            attribute = schema[column]
            row[column] = _parse(value, attribute.type_name, attribute.nullable)
        relation.insert(row)
    return relation


def write_csv(relation: Relation, path: str | Path) -> None:
    """Write a relation to a CSV file."""
    Path(path).write_text(relation_to_csv(relation), encoding="utf-8")


def read_csv(path: str | Path, name: str, schema: Schema) -> Relation:
    """Read a relation from a CSV file."""
    return relation_from_csv(Path(path).read_text(encoding="utf-8"), name, schema)
